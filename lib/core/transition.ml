type kind = VB | SC | JC | VF

let kind_rank = function VB -> 0 | SC -> 1 | JC -> 2 | VF -> 3

let kind_name = function VB -> "VB" | SC -> "SC" | JC -> "JC" | VF -> "VF"

let all_kinds = [ VB; SC; JC; VF ]

(* Per-kind telemetry: [applied] counts successor states actually
   produced, [rejected] counts candidates pruned before producing a
   state (disconnecting join-cut orientations, disconnected view-break
   splits, fusion pairs with equal canonical bodies but no body
   isomorphism).  Handles index by [kind_rank].

   The per-view enumeration caches below mean a rejection is tallied
   once per view, not once per state containing the view. *)
let obs_per_kind make =
  let arr = Array.make (List.length all_kinds) (make "VB") in
  List.iter (fun k -> arr.(kind_rank k) <- make (kind_name k)) all_kinds;
  arr

let obs_applied =
  obs_per_kind (fun k -> Obs.cached_counter ("transition." ^ k ^ ".applied"))

let obs_rejected =
  obs_per_kind (fun k -> Obs.cached_counter ("transition." ^ k ^ ".rejected"))

let obs_time =
  obs_per_kind (fun k -> Obs.cached_timer ("transition." ^ k ^ ".time"))

let obs_avf_fused = Obs.cached_counter "transition.AVF.fused"

(* Plain cumulative tally next to the Obs counter so [successors] can
   report a per-call rejected delta to the trace without depending on a
   registry being installed.  Atomic: parallel search domains derive
   actions concurrently, and a plain int array would lose updates. *)
let rejected_tally =
  Array.init (List.length all_kinds) (fun _ -> Atomic.make 0)

let reject kind =
  let i = kind_rank kind in
  Atomic.incr rejected_tally.(i);
  Obs.incr (obs_rejected.(i) ())

let dedup_head terms =
  let rec go seen = function
    | [] -> []
    | (Query.Qterm.Var x as term) :: rest ->
      if List.mem x seen then go seen rest else term :: go (x :: seen) rest
    | (Query.Qterm.Cst _ as term) :: rest -> term :: go seen rest
  in
  go [] terms

let body_of (v : View.t) = v.View.cq.Query.Cq.body

let head_of (v : View.t) = v.View.cq.Query.Cq.head

let view_of_parts head body =
  View.make (Query.Cq.make ~name:"tmp" ~head:(dedup_head head) ~body)

let replace_atom body i atom =
  List.mapi (fun j a -> if j = i then atom else a) body

(* ---------------- per-view action caches -------------------------------- *)

(* The replacement views and the rewriting expression of an SC, JC or VB
   application depend only on the victim view, never on the state around
   it — and the same view object survives across every state that keeps
   it, so a DFS re-derives each view's actions hundreds of times.  Each
   cache maps the process-unique [View.id] (an int, assigned at
   creation) to the complete [(replacements, expression)] action list;
   producing a successor is then a single [State.replace_view].

   Reusing the cached replacement *view objects* across states is the
   heart of the speedup: their canonical forms, interned ids and cost
   profiles are computed once ever instead of once per created state.
   View names are globally unique ("v<counter>"), so a cached view can
   sit in any number of sibling states without in-state collisions.
   Entries are immutable and live as long as the process, like the
   interner itself. *)

type action = View.t list * Rewriting.t

(* Each cache is guarded by a spinlock held only for the table probe,
   never for the derivation: two domains racing on an uncached view may
   both derive (the replacement views differ only in their fresh names,
   never in canonical form), and the second insert discards its copy so
   every domain sees one canonical action list per view id.  This is the
   locking discipline the `unguarded-shared-table` lint rule enforces
   for the interner and the parallel dedup table. *)
type guarded_cache = {
  c_lock : Multicore.Spinlock.t;
  c_tbl : (int, action list) Hashtbl.t [@guarded_by "c_lock"];
}

let guarded_cache () =
  { c_lock = Multicore.Spinlock.create (); c_tbl = Hashtbl.create 1024 }

let cached cache (v : View.t) derive =
  match
    Multicore.Spinlock.with_lock cache.c_lock (fun () ->
        Hashtbl.find_opt cache.c_tbl v.View.id)
  with
  | Some actions -> actions
  | None ->
    let actions = derive v in
    Multicore.Spinlock.with_lock cache.c_lock (fun () ->
        match Hashtbl.find_opt cache.c_tbl v.View.id with
        | Some existing -> existing
        | None ->
          Hashtbl.add cache.c_tbl v.View.id actions;
          actions)

let apply_actions state kind_cache derive =
  List.concat_map
    (fun v ->
      List.map
        (fun (replacements, expression) ->
          State.replace_view state ~victim:v ~replacements ~expression)
        (cached kind_cache v derive))
    state.State.views

(* ---------------- Selection cut ---------------------------------------- *)

let sc_cache = guarded_cache ()

let sc_actions (v : View.t) : action list =
  List.map
    (fun (edge : State_graph.selection_edge) ->
      let fresh = Query.Qterm.fresh_var () in
      let atom =
        Query.Atom.set_at
          (List.nth (body_of v) edge.atom)
          edge.pos (Query.Qterm.Var fresh)
      in
      let body' = replace_atom (body_of v) edge.atom atom in
      let head' = head_of v @ [ Query.Qterm.Var fresh ] in
      let v' = view_of_parts head' body' in
      let expr =
        Rewriting.Project
          ( View.columns v,
            Rewriting.Select
              ( [ Rewriting.Eq_cst (fresh, edge.constant) ],
                Rewriting.Scan (View.name v') ) )
      in
      ([ v' ], expr))
    (State_graph.selection_edges v.View.cq)

let selection_cuts state = apply_actions state sc_cache sc_actions

(* ---------------- Join cut --------------------------------------------- *)

let head_terms_for_component (v : View.t) body_atoms extra_vars =
  let vars =
    List.concat_map Query.Atom.var_set body_atoms
    |> List.sort_uniq String.compare
  in
  let from_head =
    List.filter
      (function
        | Query.Qterm.Var x -> List.mem x vars
        | Query.Qterm.Cst _ -> false)
      (head_of v)
  in
  from_head @ List.map (fun x -> Query.Qterm.Var x) extra_vars

let join_cut_connected v (edge : State_graph.join_edge) (i, pos) : action =
  let fresh = Query.Qterm.fresh_var () in
  let atom =
    Query.Atom.set_at (List.nth (body_of v) i) pos (Query.Qterm.Var fresh)
  in
  let body' = replace_atom (body_of v) i atom in
  let head' =
    head_of v @ [ Query.Qterm.Var edge.var; Query.Qterm.Var fresh ]
  in
  let v' = view_of_parts head' body' in
  let expr =
    Rewriting.Project
      ( View.columns v,
        Rewriting.Select
          ( [ Rewriting.Eq_col (edge.var, fresh) ],
            Rewriting.Scan (View.name v') ) )
  in
  ([ v' ], expr)

let join_cut_split v (edge : State_graph.join_edge) comp_a comp_b : action =
  let body = Array.of_list (body_of v) in
  let atoms_of comp = List.map (fun i -> body.(i)) comp in
  let make_side comp =
    view_of_parts
      (head_terms_for_component v (atoms_of comp) [ edge.var ])
      (atoms_of comp)
  in
  let va = make_side comp_a in
  let vb = make_side comp_b in
  let expr =
    Rewriting.Project
      ( View.columns v,
        Rewriting.Join ([], Rewriting.Scan (View.name va), Rewriting.Scan (View.name vb))
      )
  in
  ([ va; vb ], expr)

let jc_cache = guarded_cache ()

let jc_actions (v : View.t) : action list =
  let cq = v.View.cq in
  List.concat_map
    (fun (edge : State_graph.join_edge) ->
      match State_graph.components_without_edge cq edge with
      | [ _ ] ->
        (* connected case: an orientation is only valid if replacing
           that occurrence (which removes all its edges) leaves the
           view connected — otherwise the new view would have a
           Cartesian product *)
        let orientation (i, pos) =
          match State_graph.components_without_occurrence cq i pos with
          | [ _ ] -> [ join_cut_connected v edge (i, pos) ]
          | _ ->
            reject JC;
            []
        in
        orientation (edge.atom_a, edge.pos_a)
        @ orientation (edge.atom_b, edge.pos_b)
      | [ comp_a; comp_b ] -> [ join_cut_split v edge comp_a comp_b ]
      | _ -> [] (* cannot happen: removing one edge splits in ≤ 2 *))
    (State_graph.join_edges cq)

let join_cuts state = apply_actions state jc_cache jc_actions

(* ---------------- View break ------------------------------------------- *)

(* Disjoint connected splits, plus splits overlapping on exactly one
   node.  Atom 0's side is called A to halve the enumeration. *)
let split_candidates (v : View.t) =
    let cq = v.View.cq in
    let n = Query.Cq.atom_count cq in
    let splits =
      if n < 3 then []
      else begin
        let connected = State_graph.subset_checker cq in
        let indices mask members =
          List.filteri (fun i _ -> mask land (1 lsl i) <> 0) members
        in
        let all = List.init n (fun i -> i) in
        let disjoint = ref [] in
        for mask = 1 to (1 lsl n) - 2 do
          if mask land 1 = 1 then begin
            let a = indices mask all in
            let b = List.filter (fun i -> not (List.mem i a)) all in
            if b <> [] && connected a && connected b then
              disjoint := (a, b) :: !disjoint
            else reject VB
          end
        done;
        let overlapping = ref [] in
        for k = 0 to n - 1 do
          let rest = List.filter (fun i -> i <> k) all in
          let m = List.length rest in
          for mask = 1 to (1 lsl m) - 2 do
            let a' = indices mask rest in
            let b' = List.filter (fun i -> not (List.mem i a')) rest in
            (* canonical orientation: the smallest non-shared index sits in A *)
            if a' <> [] && b' <> [] && List.hd rest = List.hd a' then begin
              let a = List.sort Int.compare (k :: a') in
              let b = List.sort Int.compare (k :: b') in
              if connected a && connected b then
                overlapping := (a, b) :: !overlapping
              else reject VB
            end
          done
        done;
        !disjoint @ !overlapping
      end
    in
    splits

let vb_cache = guarded_cache ()

let vb_actions (v : View.t) : action list =
  let body = Array.of_list (body_of v) in
  List.map
    (fun (comp_a, comp_b) ->
      let atoms_of comp = List.map (fun i -> body.(i)) comp in
      let atoms_a = atoms_of comp_a in
      let atoms_b = atoms_of comp_b in
      let vars_of atoms =
        List.concat_map Query.Atom.var_set atoms
        |> List.sort_uniq String.compare
      in
      let shared =
        List.filter (fun x -> List.mem x (vars_of atoms_b)) (vars_of atoms_a)
      in
      let v1 = view_of_parts (head_terms_for_component v atoms_a shared) atoms_a in
      let v2 = view_of_parts (head_terms_for_component v atoms_b shared) atoms_b in
      let expr =
        Rewriting.Project
          ( View.columns v,
            Rewriting.Join
              ([], Rewriting.Scan (View.name v1), Rewriting.Scan (View.name v2)) )
      in
      ([ v1; v2 ], expr))
    (split_candidates v)

let view_breaks state = apply_actions state vb_cache vb_actions

(* ---------------- View fusion ------------------------------------------ *)

(* A total renaming of v3's columns such that exactly the columns hosting
   v2's head variables receive their v2 names; all other columns get
   fresh throwaway names that cannot clash. *)
let total_rename cols_v3 fwd head_vars_v2 =
  let wanted =
    List.filter_map
      (fun x2 ->
        match List.assoc_opt x2 fwd with
        | Some c -> Some (c, x2)
        | None -> None)
      head_vars_v2
  in
  let targets = List.map snd wanted in
  List.map
    (fun c ->
      match List.assoc_opt c wanted with
      | Some x2 -> (c, x2)
      | None ->
        let rec junk candidate =
          if List.mem candidate targets then junk ("_" ^ candidate)
          else candidate
        in
        (c, junk ("_dead_" ^ c)))
    cols_v3

let fuse state v1 v2 =
  match Query.Cq.body_isomorphism v1.View.cq v2.View.cq with
  | None ->
    reject VF;
    None
  | Some fwd ->
    (* fwd maps v2's variables to v1's *)
    let mapped_head_v2 =
      List.filter_map
        (function
          | Query.Qterm.Var x2 -> (
            match List.assoc_opt x2 fwd with
            | Some x1 -> Some (Query.Qterm.Var x1)
            | None -> None)
          | Query.Qterm.Cst _ -> None)
        (head_of v2)
    in
    let head3 = dedup_head (head_of v1 @ mapped_head_v2) in
    let v3 = View.make (Query.Cq.make ~name:"tmp" ~head:head3 ~body:(body_of v1)) in
    let expr1 =
      Rewriting.Project (View.columns v1, Rewriting.Scan (View.name v3))
    in
    let mapping =
      total_rename (View.columns v3) fwd (Query.Cq.head_vars v2.View.cq)
    in
    let expr2 =
      Rewriting.Project
        (View.columns v2, Rewriting.Rename (mapping, Rewriting.Scan (View.name v3)))
    in
    let n1 = View.name v1 in
    let n2 = View.name v2 in
    let views =
      v3
      :: List.filter
           (fun v ->
             let n = View.name v in
             not (String.equal n n1 || String.equal n n2))
           state.State.views
    in
    let touched = ref [] in
    let rewritings =
      List.map
        (fun (q, r) ->
          if Rewriting.mentions n1 r || Rewriting.mentions n2 r then begin
            touched := q :: !touched;
            (q, Rewriting.substitute n2 expr2 (Rewriting.substitute n1 expr1 r))
          end
          else (q, r))
        state.State.rewritings
    in
    Some
      ( State.make ~views ~rewritings,
        {
          Delta.views_removed = [ v1; v2 ];
          views_added = [ v3 ];
          rewritings_touched = List.rev !touched;
        } )

let fusion_pairs state =
  let tagged =
    List.map (fun v -> (View.body_intern_id v, v)) state.State.views
  in
  let rec pairs = function
    | [] -> []
    | (key1, v1) :: rest ->
      List.filter_map
        (fun (key2, v2) -> if key1 = key2 then Some (v1, v2) else None)
        rest
      @ pairs rest
  in
  pairs tagged

let view_fusions state =
  List.filter_map (fun (v1, v2) -> fuse state v1 v2) (fusion_pairs state)

(* Cheap structural self-check under RDFVIEWS_STRICT.  The full semantic
   checks (rewriting equivalence, cost sanity) live in Invariant and run
   from the search, which sits above this module; checking here as well
   pinpoints the faulty transition kind instead of the accepting
   search step.  The environment is read directly to keep this module
   below Invariant in the dependency order. *)
(* Memoized in an atomic (-1 unknown / 0 off / 1 on) rather than a lazy
   or a plain ref: worker domains may hit this concurrently, and the
   environment answer is the same for all of them, so a racing double
   initialization is harmless but the cell itself must be atomic. *)
let strict_memo = Atomic.make (-1)

let strict () =
  match Atomic.get strict_memo with
  | 0 -> false
  | 1 -> true
  | _ ->
    let b =
      match Sys.getenv_opt "RDFVIEWS_STRICT" with
      | None | Some "" | Some "0" | Some "false" -> false
      | Some _ -> true
    in
    Atomic.set strict_memo (if b then 1 else 0);
    b

let generate state kind =
  match kind with
  | VB -> view_breaks state
  | SC -> selection_cuts state
  | JC -> join_cuts state
  | VF -> view_fusions state

let successors_with_delta state kind =
  let i = kind_rank kind in
  let trace = Obs.Trace.global () in
  let traced = Obs.Trace.is_enabled trace in
  let rejected0 = Atomic.get rejected_tally.(i) in
  let t0 = if traced then Obs.now_ns () else 0 in
  let produced = Obs.time (obs_time.(i) ()) (fun () -> generate state kind) in
  if strict () then
    List.iter
      (fun (succ, _) ->
        match State.structural_violations succ with
        | [] -> ()
        | problem :: _ ->
          failwith
            (Printf.sprintf "Transition.%s produced an invalid state: %s"
               (kind_name kind) problem))
      produced;
  Obs.add (obs_applied.(i) ()) (List.length produced);
  if traced then
    Obs.Trace.transition trace ~kind:(kind_name kind)
      ~applied:(List.length produced)
      ~rejected:(Atomic.get rejected_tally.(i) - rejected0)
      ~elapsed_ns:(Obs.now_ns () - t0);
  produced
[@@domain_safe]

let successors state kind = List.map fst (successors_with_delta state kind)

let rec fusion_closure_from state acc =
  match fusion_pairs state with
  | [] -> (state, acc)
  | (v1, v2) :: rest -> (
    match fuse state v1 v2 with
    | Some (state', d) ->
      Obs.incr (obs_avf_fused ());
      fusion_closure_from state' (Delta.compose acc d)
    | None -> (
      (* isomorphism can fail despite equal canonical bodies only in
         pathological hash-free cases; fall through to other pairs *)
      match
        List.find_map (fun (a, b) -> fuse state a b) rest
      with
      | Some (state', d) ->
        Obs.incr (obs_avf_fused ());
        fusion_closure_from state' (Delta.compose acc d)
      | None -> (state, acc)))

let fusion_closure_delta state = fusion_closure_from state Delta.empty

let fusion_closure state = fst (fusion_closure_delta state)
