(** The four state transitions of §3.2.

    - View break (VB, Definition 3.2) splits a view with at least three
      atoms along a node partition (possibly overlapping on one node);
      the view is rewritten as the projection of the natural join of the
      two pieces.
    - Selection cut (SC, Definition 3.3) promotes a constant to a fresh
      head variable; the view is rewritten as a projection of a selection.
    - Join cut (JC, Definition 3.4) removes one join edge; when the view
      graph stays connected, the two sides of the join become head
      variables and the view is rewritten with a column-equality
      selection; when it splits, the view is replaced by its two
      components joined on the cut variable.
    - View fusion (VF, Definition 3.5) merges two views with isomorphic
      bodies into one view with the union of their heads.

    VB enumeration covers all disjoint connected two-way splits and all
    splits overlapping on exactly one node.  (Fully general overlapping
    splits grow as 3^n and add no reachable state of interest; the
    restriction is documented in DESIGN.md.) *)

type kind = VB | SC | JC | VF

val kind_rank : kind -> int
(** VB < SC < JC < VF, the stratification order of Definition 5.3. *)

val kind_name : kind -> string

val all_kinds : kind list
(** In stratification order. *)

val successors_with_delta : State.t -> kind -> (State.t * Delta.t) list
(** All states reachable from the given state by one application of the
    given transition kind, each paired with the exact delta the
    transition applied (views removed, views added, rewritings whose
    expression changed).  The delta feeds {!Cost.state_cost_delta}.  No
    deduplication is performed here; the search deduplicates by
    {!State.key}. *)

val successors : State.t -> kind -> State.t list
(** [successors s k] is [List.map fst (successors_with_delta s k)]. *)

val fusion_closure_delta : State.t -> State.t * Delta.t
(** Repeatedly apply view fusions until none is applicable — the
    aggressive-view-fusion (AVF) collapse of §5.2; the result is unique
    no matter the fusion order.  Also returns the composition of all
    fusion deltas ({!Delta.empty} when no fusion applied, in which case
    the returned state is the input itself). *)

val fusion_closure : State.t -> State.t
(** [fusion_closure s] is [fst (fusion_closure_delta s)]. *)
