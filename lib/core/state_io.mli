(** Text serialization of states, for [rdfviews select --state-out] /
    [--trace-states] and [rdfviews check --state].

    A file holds one or more states, each introduced by a line [state],
    followed by one [view <query>.] line per view (workload query
    syntax; the query's name is the view symbol) and one
    [rewrite NAME := EXPR] line per workload query.  Expressions:

    {v
    scan v1
    select[x=<ex:c>, x=y](E)
    project[x, y](E)
    join[x=y](E, E)          join[](E, E) is the natural join
    rename[x->y](E)
    union(E, E, ...)
    v}

    Constants in conditions are always bracketed ([<uri>], ["lit"],
    [_:blank]); a bare identifier after [=] is a column name. *)

exception Syntax_error of string

val expr_to_text : Rewriting.t -> string
(** Render one plan in the textual grammar accepted by
    {!parse_expr}. *)

val parse_expr : string -> Rewriting.t
(** @raise Syntax_error on malformed input. *)

val state_to_text : State.t -> string
(** Render one state (views then rewritings) in the file grammar. *)

val states_to_text : State.t list -> string
(** {!state_to_text} for each state, ["---"]-separated — the on-disk
    format of [--state-out] / [--trace-states]. *)

val parse_states : string -> State.t list
(** Parse a whole file's contents.
    @raise Syntax_error on malformed input
    @raise Invalid_argument when a view definition is rejected by
    {!View.of_cq} (disconnected body, duplicate head variables). *)

val write_file : string -> State.t list -> unit
(** {!states_to_text} to the named file (truncating). *)

val read_file : string -> State.t list
(** {!parse_states} on the named file's contents; raises the same
    exceptions plus [Sys_error] on I/O failure. *)
