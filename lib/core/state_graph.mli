(** State graphs (Definition 3.1): the visual/combinatorial representation
    of a view's body as a multigraph.

    Nodes are the view's atoms (identified by their index in the body);
    join edges connect two occurrences of a variable in two distinct
    atoms; selection edges loop on an atom position holding a constant.
    The transitions of {!Transition} are defined in terms of these
    edges. *)

type join_edge = {
  atom_a : int;
  pos_a : Query.Atom.position;
  atom_b : int;
  pos_b : Query.Atom.position;
  var : string;
}

(** A constant occurrence: atom index, position within it, and the
    constant found there — a selection-cut candidate (SC). *)
type selection_edge = {
  atom : int;
  pos : Query.Atom.position;
  constant : Rdf.Term.t;
}

val join_edges : Query.Cq.t -> join_edge list
(** All join edges of the view's graph: one per unordered pair of distinct
    atom-position occurrences of the same variable, normalized with
    [atom_a < atom_b] (or equal atoms ordered by position). *)

val selection_edges : Query.Cq.t -> selection_edge list

val is_connected_subset : Query.Cq.t -> int list -> bool
(** Whether the subgraph induced by the given atom indices is
    connected. *)

val subset_checker : Query.Cq.t -> int list -> bool
(** Partial application precomputes the view's edge pairs once; the
    returned closure is {!is_connected_subset} without the per-call
    edge recomputation.  Use when testing many subsets of one view
    (the VB split enumeration). *)

val components_without_edge : Query.Cq.t -> join_edge -> int list list
(** Connected components (lists of atom indices) of the view graph after
    removing exactly one occurrence of the given join edge; multi-edges
    between the same atoms survive. *)

val components_without_occurrence :
  Query.Cq.t -> int -> Query.Atom.position -> int list list
(** Connected components after removing {e every} join edge incident to
    the given atom-position occurrence — the connectivity that results
    from replacing that occurrence with a fresh variable (JC case 1). *)

val edge_to_string : join_edge -> string
(** Diagnostic rendering, e.g. ["0.s=1.o (?x)"]. *)

val selection_to_string : selection_edge -> string
(** Diagnostic rendering, e.g. ["2.p=<ex:hasPainted>"]. *)
