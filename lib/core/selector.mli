(** Top-level view selection, tying together statistics, reasoning and
    search (§4.3).

    Four scenarios for handling the implicit triples of RDF entailment:
    - [No_reasoning] — ignore entailment (plain §3 search);
    - [Saturation] — search against a saturated copy of the database;
      the recommended views are materialized on the saturated store;
    - [Pre_reformulation] — reformulate the workload first; the initial
      state has one view per reformulation disjunct and each query is
      rewritten as a union (§4.3);
    - [Post_reformulation] — search on the original workload with
      reformulation-aware statistics, then reformulate the recommended
      views; Theorem 4.2 makes this equivalent to saturation while never
      writing implicit triples. *)

type reasoning =
  | No_reasoning
  | Saturation of Rdf.Schema.t
  | Pre_reformulation of Rdf.Schema.t
  | Post_reformulation of Rdf.Schema.t

type result = {
  report : Search.report;
  recommended : Query.Ucq.t list;
      (** materializable view definitions, aligned with the best state's
          views; UCQs with several disjuncts only under
          post-reformulation *)
  rewritings : (string * Rewriting.t) list;
      (** per-query rewritings over the recommended views *)
  stats : Stats.Statistics.t;
      (** the statistics used (exposed for inspection and reuse) *)
  store_for_materialization : Rdf.Store.t;
      (** the store against which [recommended] should be materialized:
          the saturated copy under [Saturation], the original store
          otherwise *)
}

val reasoning_name : reasoning -> string
(** Display name of the scenario ("none", "saturation", ...). *)

val select :
  ?jobs:int ->
  ?parallel_mode:Parallel_search.mode ->
  store:Rdf.Store.t ->
  reasoning:reasoning ->
  options:Search.options ->
  Query.Cq.t list ->
  result
(** Run view selection for the workload.  Query names must be
    distinct.  [jobs] (default 1) spreads the search over that many
    domains via {!Parallel_search} — with the default
    [parallel_mode = Deterministic] the result is identical to the
    sequential one. *)

val initial_state : reasoning -> Query.Cq.t list -> State.t
(** The standard initial state for a workload in the given mode: one
    view per query (§5.1), or one view per reformulation disjunct under
    pre-reformulation (§4.3). *)

val run_from_state :
  ?jobs:int ->
  ?parallel_mode:Parallel_search.mode ->
  store:Rdf.Store.t ->
  reasoning:reasoning ->
  options:Search.options ->
  State.t ->
  result
(** Like {!select} but searching from an arbitrary valid state — the
    warm-start entry point used by {!Dynamic}. *)
