module SSet = Set.Make (String)

(* Trim the previous best state to the surviving queries, dropping the
   views no surviving rewriting uses (Definition 2.3's "all views are
   useful" invariant). *)
let trim (state : State.t) removed =
  let removed = SSet.of_list removed in
  let rewritings =
    List.filter (fun (q, _) -> not (SSet.mem q removed)) state.State.rewritings
  in
  let used =
    SSet.of_list
      (List.concat_map (fun (_, r) -> Rewriting.views_used r) rewritings)
  in
  let views =
    List.filter (fun v -> SSet.mem (View.name v) used) state.State.views
  in
  State.make ~views ~rewritings

let extend ~store ~reasoning ~options ~previous ~removed ~added =
  let base = previous.Selector.report.Search.best in
  let known = List.map fst base.State.rewritings in
  List.iter
    (fun name ->
      if not (List.mem name known) then
        invalid_arg ("Dynamic.extend: unknown query " ^ name))
    removed;
  let survivors = trim base removed in
  let surviving_names = SSet.of_list (List.map fst survivors.State.rewritings) in
  List.iter
    (fun q ->
      if SSet.mem q.Query.Cq.name surviving_names then
        invalid_arg ("Dynamic.extend: duplicate query name " ^ q.Query.Cq.name))
    added;
  let fresh =
    match added with
    | [] -> State.make ~views:[] ~rewritings:[]
    | _ :: _ -> Selector.initial_state reasoning added
  in
  let warm =
    State.make
      ~views:(survivors.State.views @ fresh.State.views)
      ~rewritings:(survivors.State.rewritings @ fresh.State.rewritings)
  in
  if warm.State.rewritings = [] then
    invalid_arg "Dynamic.extend: empty resulting workload";
  Selector.run_from_state ~store ~reasoning ~options warm
