type cond =
  | Eq_cst of string * Rdf.Term.t
  | Eq_col of string * string

type t =
  | Scan of string
  | Select of cond list * t
  | Project of string list * t
  | Join of (string * string) list * t * t
  | Rename of (string * string) list * t
  | Union of t list

type env = (string, string list) Hashtbl.t

let rec columns env = function
  | Scan name -> (
    match Hashtbl.find_opt env name with
    | Some cols -> cols
    | None -> failwith ("Rewriting.columns: unknown view " ^ name))
  | Select (_, e) -> columns env e
  | Project (cols, _) -> cols
  | Join (_, l, r) ->
    let lc = columns env l in
    let rc = columns env r in
    lc @ List.filter (fun c -> not (List.mem c lc)) rc
  | Rename (mapping, e) ->
    List.map
      (fun c -> match List.assoc_opt c mapping with Some c' -> c' | None -> c)
      (columns env e)
  | Union [] -> failwith "Rewriting.columns: empty union"
  | Union (e :: _) -> columns env e

let equal_cond a b =
  match (a, b) with
  | Eq_cst (c1, v1), Eq_cst (c2, v2) ->
    String.equal c1 c2 && Rdf.Term.equal v1 v2
  | Eq_col (a1, b1), Eq_col (a2, b2) ->
    String.equal a1 a2 && String.equal b1 b2
  | Eq_cst _, Eq_col _ | Eq_col _, Eq_cst _ -> false

let equal_pair (a1, b1) (a2, b2) = String.equal a1 a2 && String.equal b1 b2

let rec equal x y =
  match (x, y) with
  | Scan a, Scan b -> String.equal a b
  | Select (ca, ea), Select (cb, eb) ->
    List.equal equal_cond ca cb && equal ea eb
  | Project (ca, ea), Project (cb, eb) ->
    List.equal String.equal ca cb && equal ea eb
  | Join (ca, la, ra), Join (cb, lb, rb) ->
    List.equal equal_pair ca cb && equal la lb && equal ra rb
  | Rename (ma, ea), Rename (mb, eb) ->
    List.equal equal_pair ma mb && equal ea eb
  | Union ba, Union bb -> List.equal equal ba bb
  | ( (Scan _ | Select _ | Project _ | Join _ | Rename _ | Union _),
      (Scan _ | Select _ | Project _ | Join _ | Rename _ | Union _) ) ->
    false

let rec substitute name replacement expr =
  match expr with
  | Scan n -> if String.equal n name then replacement else expr
  | Select (conds, e) -> Select (conds, substitute name replacement e)
  | Project (cols, e) -> Project (cols, substitute name replacement e)
  | Join (conds, l, r) ->
    Join (conds, substitute name replacement l, substitute name replacement r)
  | Rename (mapping, e) -> Rename (mapping, substitute name replacement e)
  | Union branches -> Union (List.map (substitute name replacement) branches)

let rec mentions name = function
  | Scan n -> String.equal n name
  | Select (_, e) | Project (_, e) | Rename (_, e) -> mentions name e
  | Join (_, l, r) -> mentions name l || mentions name r
  | Union branches -> List.exists (mentions name) branches

let views_used expr =
  let rec collect acc = function
    | Scan n -> if List.mem n acc then acc else n :: acc
    | Select (_, e) | Project (_, e) | Rename (_, e) -> collect acc e
    | Join (_, l, r) -> collect (collect acc l) r
    | Union branches -> List.fold_left collect acc branches
  in
  List.rev (collect [] expr)

let rec scan_count = function
  | Scan _ -> 1
  | Select (_, e) | Project (_, e) | Rename (_, e) -> scan_count e
  | Join (_, l, r) -> scan_count l + scan_count r
  | Union branches -> List.fold_left (fun acc e -> acc + scan_count e) 0 branches

let well_formed env expr =
  let ok = ref true in
  let check_cols available cols =
    List.iter (fun c -> if not (List.mem c available) then ok := false) cols
  in
  let rec walk e =
    match e with
    | Scan n -> if not (Hashtbl.mem env n) then ok := false
    | Select (conds, inner) ->
      walk inner;
      if !ok then
        let avail = columns env inner in
        List.iter
          (function
            | Eq_cst (c, _) -> check_cols avail [ c ]
            | Eq_col (c1, c2) -> check_cols avail [ c1; c2 ])
          conds
    | Project (cols, inner) ->
      walk inner;
      if !ok then check_cols (columns env inner) cols
    | Join (conds, l, r) ->
      walk l;
      walk r;
      if !ok then begin
        let lc = columns env l in
        let rc = columns env r in
        List.iter
          (fun (a, b) ->
            check_cols lc [ a ];
            check_cols rc [ b ])
          conds
      end
    | Rename (mapping, inner) ->
      walk inner;
      if !ok then begin
        check_cols (columns env inner) (List.map fst mapping);
        let targets = List.map snd mapping in
        if
          List.length (List.sort_uniq String.compare targets)
          <> List.length targets
        then ok := false;
        if !ok then begin
          let out = columns env e in
          if
            List.length (List.sort_uniq String.compare out) <> List.length out
          then ok := false
        end
      end
    | Union branches ->
      List.iter walk branches;
      if !ok then
        match branches with
        | [] -> ok := false
        | first :: rest ->
          let a = List.length (columns env first) in
          List.iter
            (fun b -> if List.length (columns env b) <> a then ok := false)
            rest
  in
  walk expr;
  !ok

let cond_to_string = function
  | Eq_cst (c, v) -> c ^ "=" ^ Rdf.Term.to_string v
  | Eq_col (a, b) -> a ^ "=" ^ b

let rec to_string = function
  | Scan n -> n
  | Select (conds, e) ->
    "σ[" ^ String.concat "," (List.map cond_to_string conds) ^ "](" ^ to_string e
    ^ ")"
  | Project (cols, e) ->
    "π[" ^ String.concat "," cols ^ "](" ^ to_string e ^ ")"
  | Join (conds, l, r) ->
    let tag =
      match conds with
      | [] -> "⋈"
      | _ ->
        "⋈[" ^ String.concat "," (List.map (fun (a, b) -> a ^ "=" ^ b) conds)
        ^ "]"
    in
    "(" ^ to_string l ^ " " ^ tag ^ " " ^ to_string r ^ ")"
  | Rename (mapping, e) ->
    "ρ[" ^ String.concat "," (List.map (fun (a, b) -> a ^ "→" ^ b) mapping)
    ^ "](" ^ to_string e ^ ")"
  | Union branches -> String.concat " ∪ " (List.map to_string branches)

let pp fmt t = Format.pp_print_string fmt (to_string t)
