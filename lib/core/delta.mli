(** Transition deltas: what changed between a state and a successor.

    Every transition (Definitions 3.2–3.5) removes one or two views,
    adds one or two replacement views, and substitutes the removed
    symbols inside the rewritings that mention them.  The delta records
    exactly that, letting {!Cost.state_cost_delta} compute the child's
    cost as parent − removed contributions + added contributions, with
    only the touched rewritings re-estimated. *)

type t = {
  views_removed : View.t list;  (** views of the parent absent from the child *)
  views_added : View.t list;    (** views of the child absent from the parent *)
  rewritings_touched : string list;
      (** names of the queries whose rewriting was rewritten; all other
          rewritings are physically unchanged *)
}

val empty : t
(** The identity delta: nothing added, removed or rewritten. *)

val compose : t -> t -> t
(** [compose a b]: the delta of applying [a] then [b] (used to fold the
    aggressive-view-fusion closure into the producing transition's
    delta).  Views added by [a] and removed by [b] cancel out. *)

val to_string : t -> string
