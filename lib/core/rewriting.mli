(** Rewritings: select-project-join(-union) expressions over view symbols.

    A rewriting for a query [q] is an algebra expression whose output
    columns align positionally with [q]'s head (Definition 2.2).  State
    transitions rewrite these expressions by substituting a view symbol
    with an expression over the replacement views (Definitions 3.2–3.5).

    Unions appear only in the pre-reformulation scenario (§4.3), where a
    workload query is rewritten as the union of its reformulations. *)

type cond =
  | Eq_cst of string * Rdf.Term.t  (** column = constant *)
  | Eq_col of string * string      (** column = column *)

type t =
  | Scan of string
      (** a view scan; columns are the view's head variables *)
  | Select of cond list * t
  | Project of string list * t
      (** projection on the listed columns, in order *)
  | Join of (string * string) list * t * t
      (** equi-join; an empty condition list means natural join on all
          shared column names.  Output columns: left columns then right
          columns not already output. *)
  | Rename of (string * string) list * t
      (** simultaneous column renaming [(old, new)] *)
  | Union of t list
      (** set union of union-compatible branches *)

type env = (string, string list) Hashtbl.t
(** Maps view names to their column lists. *)

val columns : env -> t -> string list
(** Output columns of the expression.  Raises [Failure] on unknown view
    symbols or column references. *)

val equal_cond : cond -> cond -> bool

val equal : t -> t -> bool
(** Structural equality, delegating constants to {!Rdf.Term.equal}. *)

val substitute : string -> t -> t -> t
(** [substitute name replacement expr] replaces every [Scan name] in
    [expr] by [replacement].  The replacement must have the same columns
    as the view it stands for. *)

val mentions : string -> t -> bool
(** [mentions name expr] is true when [expr] contains [Scan name] —
    cheaper than [views_used] (no allocation, early exit) and used by
    the transitions to substitute only the rewritings that actually
    reference the replaced view. *)

val views_used : t -> string list
(** Distinct view names scanned by the expression (with multiplicity
    collapsed); order of first occurrence. *)

val scan_count : t -> int
(** Number of [Scan] leaves, multiplicities included (the [v ∈ r] sum of
    the I/O cost, §3.3). *)

val well_formed : env -> t -> bool
(** Checks that all column references resolve and unions are
    compatible. *)

val to_string : t -> string
(** Single-line rendering of the plan, innermost operator first. *)

val pp : Format.formatter -> t -> unit
(** Formatter version of {!to_string}. *)
