type strategy = Exnaive | Exstr | Dfs | Gstr

type options = {
  strategy : strategy;
  avf : bool;
  stop_tt : bool;
  stop_var : bool;
  time_budget : float option;
  max_states : int option;
  weights : Cost.weights;
  on_accept : (State.t -> unit) option;
}

let default_options =
  {
    strategy = Dfs;
    avf = true;
    stop_tt = true;
    stop_var = true;
    time_budget = None;
    max_states = None;
    weights = Cost.default_weights;
    on_accept = None;
  }

type report = {
  best : State.t;
  best_cost : float;
  initial_cost : float;
  created : int;
  duplicates : int;
  discarded : int;
  explored : int;
  elapsed : float;
  trajectory : (float * float) list;
  completed : bool;
  out_of_memory : bool;
}

let rcr r =
  if r.initial_cost = 0. then 0.
  else (r.initial_cost -. r.best_cost) /. r.initial_cost

let strategy_name = function
  | Exnaive -> "EXNAIVE"
  | Exstr -> "EXSTR"
  | Dfs -> "DFS"
  | Gstr -> "GSTR"

let strategy_of_string s =
  match String.lowercase_ascii s with
  | "exnaive" -> Some Exnaive
  | "exstr" -> Some Exstr
  | "dfs" -> Some Dfs
  | "gstr" -> Some Gstr
  | _ -> None

(* An all-variable view (stopvar) necessarily has a single atom: views
   are connected, and two atoms sharing no constant would still share a
   variable — but any multi-atom all-variable view is still rejected as
   its space occupancy exceeds the full triple table. *)
let is_all_var_view v =
  Query.Cq.constant_count v.View.cq = 0

let is_triple_table_view v =
  View.atom_count v = 1 && Query.Cq.constant_count v.View.cq = 0

let violates_stop options state =
  List.exists
    (fun v ->
      (options.stop_tt && is_triple_table_view v)
      || (options.stop_var && is_all_var_view v))
    state.State.views

(* Obs mirrors of the engine's accounting, plus what the report cannot
   carry: per-stratum breakdowns and per-state expansion timings.  The
   stratum of an event is the rank of the transition kind that produced
   (resp. is expanding) the state. *)
let obs_runs = Obs.cached_counter "search.runs"
let obs_created = Obs.cached_counter "search.created"
let obs_duplicates = Obs.cached_counter "search.duplicates"
let obs_discarded = Obs.cached_counter "search.discarded"
let obs_explored = Obs.cached_counter "search.explored"
let obs_reopened = Obs.cached_counter "search.reopened"
let obs_run_time = Obs.cached_timer "search.run"
let obs_expand_time = Obs.cached_timer "search.expand"
let obs_expand_hist = Obs.cached_histogram "search.expand.ns"
let obs_initial_cost = Obs.cached_gauge "search.initial_cost"
let obs_best_cost = Obs.cached_gauge "search.best_cost"
let obs_intern_size = Obs.cached_gauge "intern.size"

let obs_per_stratum make =
  let arr = Array.make (List.length Transition.all_kinds) (make "VB") in
  List.iter
    (fun k -> arr.(Transition.kind_rank k) <- make (Transition.kind_name k))
    Transition.all_kinds;
  arr

let obs_stratum_created =
  obs_per_stratum (fun k ->
      Obs.cached_counter ("search.stratum." ^ k ^ ".created"))

let obs_stratum_expand =
  obs_per_stratum (fun k -> Obs.cached_timer ("search.stratum." ^ k ^ ".expand"))

type engine = {
  estimator : Cost.t;
  options : options;
  trace : Obs.Trace.t;  (* the ambient event trace; Off outside --trace *)
  strict_reference : Invariant.reference option;
      (* Some under RDFVIEWS_STRICT: every accepted state is asserted
         equivalent to this reference *)
  seen : int State.Tbl.t;  (* state key -> lowest stratum rank *)
  mutable created : int;
  mutable duplicates : int;
  mutable discarded : int;
  mutable explored : int;
  mutable best : State.t;
  mutable best_cost : float;
  mutable trajectory : (float * float) list;
  mutable oom : bool;
  started : float;
}

let now () = Unix.gettimeofday ()

let elapsed engine = now () -. engine.started

let timed_out engine =
  match engine.options.time_budget with
  | Some budget -> elapsed engine > budget
  | None -> false

let memory_exceeded engine =
  match engine.options.max_states with
  | Some cap ->
    if State.Tbl.length engine.seen > cap then begin
      engine.oom <- true;
      true
    end
    else false
  | None -> false

let note_best engine state cost =
  if cost < engine.best_cost then begin
    engine.best <- state;
    engine.best_cost <- cost;
    engine.trajectory <- (elapsed engine, cost) :: engine.trajectory
  end

(* Periodic progress marker in the event trace: one event (and a forced
   flush) every 512 created states, bounding what a crash can lose.  The
   enabled check comes first so the untraced hot path pays one branch
   and allocates nothing. *)
let heartbeat engine =
  if Obs.Trace.is_enabled engine.trace && engine.created land 511 = 0 then
    Obs.Trace.heartbeat engine.trace ~created:engine.created
      ~explored:engine.explored ~best_cost:engine.best_cost
      ~elapsed_ns:(int_of_float (elapsed engine *. 1e9))

(* The pure half of successor admission: the AVF collapse, composing
   its fusion deltas on top of the transition's own change so the pair
   handed to {!Cost.state_cost_delta} always describes parent →
   collapsed state.  Touches no engine state — parallel workers run it
   speculatively off the coordinating domain. *)
let collapse options ~delta state =
  if options.avf then begin
    match Transition.fusion_closure_delta state with
    (* no fusion fired (the common case): skip the compose allocation *)
    | state', { Delta.views_removed = []; views_added = []; rewritings_touched = [] }
      ->
      (state', delta)
    | state', fused -> (state', Delta.compose delta fused)
  end
  else (state, delta)

(* The mutating half: account, dedup against the seen-table, cost,
   strict-check, trace.  Expects an already-{!collapse}d state.  Returns
   [Some (state, rank)] when the state is new (or re-opened at a lower
   stratum) and should be expanded further. *)
let register engine ~rank ~parent ~delta state =
  engine.created <- engine.created + 1;
  Obs.incr (obs_created ());
  Obs.incr (obs_stratum_created.(rank) ());
  heartbeat engine;
  (* the trace names states by their creation index; 0 is the initial state *)
  let id = engine.created in
  if violates_stop engine.options state then begin
    engine.discarded <- engine.discarded + 1;
    Obs.incr (obs_discarded ());
    Obs.Trace.state engine.trace ~cls:Obs.Trace.Discarded ~id ~stratum:rank
      ~cost:Float.nan;
    None
  end
  else begin
    let key = State.key state in
    match State.Tbl.find_opt engine.seen key with
    | Some old_rank when old_rank <= rank ->
      engine.duplicates <- engine.duplicates + 1;
      Obs.incr (obs_duplicates ());
      Obs.Trace.state engine.trace ~cls:Obs.Trace.Duplicate ~id ~stratum:rank
        ~cost:Float.nan;
      None
    | Some _ ->
      (* reached again, but at a lower stratum: re-open *)
      engine.duplicates <- engine.duplicates + 1;
      Obs.incr (obs_duplicates ());
      Obs.incr (obs_reopened ());
      State.Tbl.replace engine.seen key rank;
      Obs.Trace.state engine.trace ~cls:Obs.Trace.Reopened ~id ~stratum:rank
        ~cost:Float.nan;
      Some (state, rank)
    | None ->
      State.Tbl.replace engine.seen key rank;
      (* cost first, then the strict assertion: the incremental result
         must be memoized before Invariant's memo_consistent check so
         that the check exercises the delta path, not a fresh full
         recompute of its own *)
      let cost =
        Cost.state_cost_delta engine.estimator ~parent ~delta state
      in
      (match engine.strict_reference with
      | Some reference ->
        Invariant.assert_valid ~estimator:engine.estimator reference state
      | None -> ());
      note_best engine state cost;
      Obs.Trace.state engine.trace ~cls:Obs.Trace.Accepted ~id ~stratum:rank
        ~cost;
      (match engine.options.on_accept with
      | Some hook -> hook state
      | None -> ());
      Some (state, rank)
  end
[@@coordinator_only]

let consider engine ~rank ~parent ~delta state =
  let state, delta = collapse engine.options ~delta state in
  register engine ~rank ~parent ~delta state

let allowed_kinds options rank =
  match options.strategy with
  | Exnaive -> Transition.all_kinds
  | Exstr | Dfs | Gstr ->
    List.filter (fun k -> Transition.kind_rank k >= rank) Transition.all_kinds

(* EXNAIVE is unstratified: every revisit is a plain duplicate *)
let rank_of options kind =
  match options.strategy with
  | Exnaive -> 0
  | Exstr | Dfs | Gstr -> Transition.kind_rank kind

let note_explored engine =
  engine.explored <- engine.explored + 1;
  Obs.incr (obs_explored ())
[@@coordinator_only]

let with_expand_metrics rank f =
  Obs.time_with (obs_expand_time ()) (obs_expand_hist ()) @@ fun () ->
  Obs.time (obs_stratum_expand.(rank) ()) f

let expand engine state rank =
  note_explored engine;
  with_expand_metrics rank @@ fun () ->
  List.concat_map
    (fun kind ->
      List.filter_map
        (fun (succ, delta) ->
          consider engine ~rank:(rank_of engine.options kind) ~parent:state
            ~delta succ)
        (Transition.successors_with_delta state kind))
    (allowed_kinds engine.options rank)

(* Worklist search; [lifo] makes it depth-first.  FIFO uses a Queue to
   stay linear on large frontiers. *)
let worklist_search engine ~lifo initial =
  let completed = ref true in
  if lifo then begin
    let pending = ref [ (initial, 0) ] in
    let rec loop () =
      match !pending with
      | [] -> ()
      | (state, rank) :: rest ->
        if timed_out engine || memory_exceeded engine then completed := false
        else begin
          pending := expand engine state rank @ rest;
          loop ()
        end
    in
    loop ()
  end
  else begin
    let pending = Queue.create () in
    Queue.add (initial, 0) pending;
    let rec loop () =
      if not (Queue.is_empty pending) then
        if timed_out engine || memory_exceeded engine then completed := false
        else begin
          let state, rank = Queue.pop pending in
          List.iter (fun item -> Queue.add item pending) (expand engine state rank);
          loop ()
        end
    in
    loop ()
  end;
  !completed

(* Greedy stratified: full closure of one kind from the current best,
   then restart from the best state found, next kind. *)
let gstr_search engine initial =
  let completed = ref true in
  let closure_of kind start =
    let stage_best = ref start in
    let stage_best_cost = ref (Cost.state_cost engine.estimator start) in
    let pending = ref [ start ] in
    let rec loop () =
      match !pending with
      | [] -> ()
      | state :: rest ->
        if timed_out engine || memory_exceeded engine then completed := false
        else begin
          note_explored engine;
          let fresh =
            List.filter_map
              (fun (succ, delta) ->
                consider engine
                  ~rank:(Transition.kind_rank kind)
                  ~parent:state ~delta succ)
              (Transition.successors_with_delta state kind)
          in
          List.iter
            (fun (s, _) ->
              let c = Cost.state_cost engine.estimator s in
              if c < !stage_best_cost then begin
                stage_best := s;
                stage_best_cost := c
              end)
            fresh;
          pending := List.map fst fresh @ rest;
          loop ()
        end
    in
    loop ();
    !stage_best
  in
  let final =
    List.fold_left
      (fun current kind -> closure_of kind current)
      initial Transition.all_kinds
  in
  note_best engine final (Cost.state_cost engine.estimator final);
  !completed

let with_run_metrics f =
  Obs.incr (obs_runs ());
  Obs.time (obs_run_time ()) f

(* Everything a run does before the strategy loop starts: compute the
   initial cost, recover the strict reference, close the initial state
   under AVF, open the trace, build the engine and seed the seen-table.
   Split out so {!Parallel_search} shares the exact same entry
   sequence. *)
type prologue = {
  p_engine : engine;
  p_initial : State.t;  (* after the AVF closure *)
  p_initial_cost : float;
}

let prologue estimator options initial =
  (* S0's cost is that of the raw query set (§5.1); the AVF collapse of
     the initial state, when enabled, counts as the first search gain *)
  let initial_cost = Cost.state_cost estimator initial in
  (* Under RDFVIEWS_STRICT the reference semantics is recovered from the
     initial state itself: unfolding S0's rewritings yields (a renaming
     of) the workload, so no extra plumbing is needed.  Every accepted
     state is then asserted equivalent to it. *)
  let strict_reference =
    if Invariant.strict_enabled () then
      match Invariant.reference_of_state initial with
      | Ok reference -> Some reference
      | Error detail ->
        raise
          (Invariant.Violation
             {
               Invariant.state_key = State.key_string initial;
               invariant = "rewriting";
               detail = "initial state does not unfold: " ^ detail;
             })
    else None
  in
  let initial =
    if options.avf then Transition.fusion_closure initial else initial
  in
  (match strict_reference with
  | Some reference -> Invariant.assert_valid ~estimator reference initial
  | None -> ());
  (match options.on_accept with Some hook -> hook initial | None -> ());
  let trace = Obs.Trace.global () in
  if Obs.Trace.is_enabled trace then
    Obs.Trace.run_start trace
      ~strategy:(strategy_name options.strategy)
      ~strata:
        (Array.of_list (List.map Transition.kind_name Transition.all_kinds))
      ~initial_cost;
  let engine =
    {
      estimator;
      options;
      trace;
      strict_reference;
      seen = State.Tbl.create 4096;
      created = 0;
      duplicates = 0;
      discarded = 0;
      explored = 0;
      best = initial;
      best_cost = Cost.state_cost estimator initial;
      trajectory = [ (0., initial_cost) ];
      oom = false;
      started = now ();
    }
  in
  if engine.best_cost < initial_cost then
    engine.trajectory <- (0., engine.best_cost) :: engine.trajectory;
  State.Tbl.replace engine.seen (State.key initial) 0;
  Obs.Trace.state trace ~cls:Obs.Trace.Accepted ~id:0 ~stratum:0
    ~cost:engine.best_cost;
  { p_engine = engine; p_initial = initial; p_initial_cost = initial_cost }
[@@coordinator_only]

let epilogue { p_engine = engine; p_initial_cost = initial_cost; _ } ~completed
    =
  let completed = completed && not engine.oom in
  Obs.Trace.run_end engine.trace ~best_cost:engine.best_cost
    ~created:engine.created ~explored:engine.explored
    ~duplicates:engine.duplicates ~discarded:engine.discarded ~completed;
  Obs.set_gauge (obs_initial_cost ()) initial_cost;
  Obs.set_gauge (obs_best_cost ()) engine.best_cost;
  Obs.set_gauge (obs_intern_size ()) (float_of_int (Intern.size ()));
  {
    best = engine.best;
    best_cost = engine.best_cost;
    initial_cost;
    created = engine.created;
    duplicates = engine.duplicates;
    discarded = engine.discarded;
    explored = engine.explored;
    elapsed = elapsed engine;
    trajectory = List.rev engine.trajectory;
    completed;
    out_of_memory = engine.oom;
  }
[@@coordinator_only]

let run_from estimator options initial =
  with_run_metrics @@ fun () ->
  let p = prologue estimator options initial in
  let engine = p.p_engine in
  let completed =
    match options.strategy with
    | Exnaive | Exstr -> worklist_search engine ~lifo:false p.p_initial
    | Dfs -> worklist_search engine ~lifo:true p.p_initial
    | Gstr -> gstr_search engine p.p_initial
  in
  epilogue p ~completed
[@@coordinator_only]

let run stats options workload =
  let estimator = Cost.create stats options.weights in
  run_from estimator options (State.initial workload)
[@@coordinator_only]

(* Shared machinery for {!Parallel_search}.  Mirrored (with the engine
   record concrete) under [Internal] in the interface; not part of the
   stable API. *)
module Internal = struct
  type nonrec engine = engine

  type nonrec prologue = prologue = {
    p_engine : engine;
    p_initial : State.t;
    p_initial_cost : float;
  }

  let prologue = prologue
  let epilogue = epilogue
  let with_run_metrics = with_run_metrics
  let collapse = collapse
  let register = register
  let note_explored = note_explored
  let with_expand_metrics = with_expand_metrics
  let allowed_kinds = allowed_kinds
  let rank_of = rank_of
  let should_stop engine = timed_out engine || memory_exceeded engine
  let engine_options engine = engine.options
  let engine_estimator engine = engine.estimator
  let engine_strict_reference engine = engine.strict_reference
  let engine_elapsed = elapsed
  let engine_best engine = (engine.best, engine.best_cost)

  let absorb_totals engine ~created ~duplicates ~discarded ~explored =
    engine.created <- engine.created + created;
    engine.duplicates <- engine.duplicates + duplicates;
    engine.discarded <- engine.discarded + discarded;
    engine.explored <- engine.explored + explored
  [@@coordinator_only]

  let offer_best engine state cost = note_best engine state cost
  [@@coordinator_only]

  let set_trajectory engine trajectory = engine.trajectory <- trajectory
  [@@coordinator_only]

  let engine_trajectory engine = engine.trajectory
  let mark_oom engine = engine.oom <- true [@@coordinator_only]
end
