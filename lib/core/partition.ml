module TermSet = Set.Make (Rdf.Term)

let constants_of q = TermSet.of_list (Query.Cq.constants q)

(* Union-find over query indices, linked when constant sets intersect. *)
let groups queries =
  let items = Array.of_list queries in
  let constant_sets = Array.map constants_of items in
  let n = Array.length items in
  let parent = Array.init n (fun i -> i) in
  let rec find i = if parent.(i) = i then i else find parent.(i) in
  let union i j = parent.(find i) <- find j in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if not (TermSet.is_empty (TermSet.inter constant_sets.(i) constant_sets.(j)))
      then union i j
    done
  done;
  let table = Hashtbl.create 8 in
  let order = ref [] in
  for i = 0 to n - 1 do
    let root = find i in
    if not (Hashtbl.mem table root) then begin
      Hashtbl.add table root (ref []);
      order := root :: !order
    end;
    let bucket = Hashtbl.find table root in
    bucket := items.(i) :: !bucket
  done;
  List.rev_map (fun root -> List.rev !(Hashtbl.find table root)) !order

let merge_reports total_elapsed reports =
  match reports with
  | [] -> invalid_arg "Partition.merge_reports: no groups"
  | first :: _ ->
    let sum f = List.fold_left (fun acc r -> acc +. f r) 0. reports in
    let sumi f = List.fold_left (fun acc r -> acc + f r) 0 reports in
    {
      Search.best =
        State.make
          ~views:(List.concat_map (fun r -> r.Search.best.State.views) reports)
          ~rewritings:
            (List.concat_map (fun r -> r.Search.best.State.rewritings) reports);
      best_cost = sum (fun r -> r.Search.best_cost);
      initial_cost = sum (fun r -> r.Search.initial_cost);
      created = sumi (fun r -> r.Search.created);
      duplicates = sumi (fun r -> r.Search.duplicates);
      discarded = sumi (fun r -> r.Search.discarded);
      explored = sumi (fun r -> r.Search.explored);
      elapsed = total_elapsed;
      trajectory = first.Search.trajectory;
      completed = List.for_all (fun r -> r.Search.completed) reports;
      out_of_memory = List.exists (fun r -> r.Search.out_of_memory) reports;
    }

let select ~store ~reasoning ~options workload =
  let started = Unix.gettimeofday () in
  match groups workload with
  | [] -> invalid_arg "Partition.select: empty workload"
  | [ _ ] -> Selector.select ~store ~reasoning ~options workload
  | query_groups ->
    let share = float_of_int (List.length query_groups) in
    let per_group_options =
      {
        options with
        Search.time_budget =
          Option.map (fun b -> b /. share) options.Search.time_budget;
      }
    in
    let results =
      List.map
        (fun group ->
          Selector.select ~store ~reasoning ~options:per_group_options group)
        query_groups
    in
    let reports = List.map (fun r -> r.Selector.report) results in
    {
      Selector.report = merge_reports (Unix.gettimeofday () -. started) reports;
      recommended = List.concat_map (fun r -> r.Selector.recommended) results;
      rewritings = List.concat_map (fun r -> r.Selector.rewritings) results;
      stats = (List.hd results).Selector.stats;
      store_for_materialization =
        (List.hd results).Selector.store_for_materialization;
    }
