(* Sharded, spinlock-guarded dedup table over state keys.

   The sequential engine keeps its seen-set in a plain [State.Tbl];
   under parallel search every domain probes and updates the same
   logical set, so the table is split into [shard_count] independent
   buckets, each behind its own spinlock.  A key's shard is chosen by
   its precomputed hash, so two domains only contend when they touch
   keys that land in the same bucket.

   The one non-trivial operation is [visit]: the find-and-update must
   be a single critical section, otherwise two domains could both see
   a key as absent and both report [`New].  Holding the shard lock
   across the probe and the write makes the rank-reopen rule atomic. *)

let shard_count = 16 (* power of two: shard choice is a mask *)

type shard = {
  lock : Multicore.Spinlock.t;
  b_tbl : int State.Tbl.t [@guarded_by "lock"];
      (* key -> best (lowest) rank seen so far *)
}

type t = { shards : shard array; population : int Atomic.t }

let create () =
  {
    shards =
      Array.init shard_count (fun _ ->
          { lock = Multicore.Spinlock.create (); b_tbl = State.Tbl.create 512 });
    population = Atomic.make 0;
  }

let shard_of t key = t.shards.(State.hash_key key land (shard_count - 1))

type outcome = New | Reopened | Duplicate

let visit t key rank =
  let s = shard_of t key in
  let outcome =
    Multicore.Spinlock.with_lock s.lock (fun () ->
        match State.Tbl.find_opt s.b_tbl key with
        | Some old_rank when old_rank <= rank -> Duplicate
        | Some _ ->
          State.Tbl.replace s.b_tbl key rank;
          Reopened
        | None ->
          State.Tbl.replace s.b_tbl key rank;
          New)
  in
  if outcome = New then Atomic.incr t.population;
  outcome
[@@domain_safe]

let mem t key =
  let s = shard_of t key in
  Multicore.Spinlock.with_lock s.lock (fun () -> State.Tbl.mem s.b_tbl key)
[@@domain_safe]

let population t = Atomic.get t.population [@@domain_safe]
