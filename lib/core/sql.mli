(** SQL generation: ship the recommended views and rewritings to a
    relational back-end.

    The paper deploys over PostgreSQL with a single triple table (§6) and
    notes that the framework "could easily translate our rewritings
    directly to any RDF platform's logical plans".  This module emits
    portable SQL92:

    - {!view_ddl} renders a (possibly UCQ) view definition as
      [CREATE MATERIALIZED VIEW … AS SELECT … FROM triples …];
    - {!rewriting_query} renders a rewriting as a [SELECT] over the view
      relations;
    - {!deployment_script} bundles a whole selector result.

    Constants are emitted as string literals of their Turtle rendering;
    the triple table is assumed to be [triples(s, p, o)] (configurable). *)

type config = {
  triple_table : string;  (** name of the triple table (default ["triples"]) *)
  materialized : bool;    (** emit MATERIALIZED views (default true) *)
}

val default_config : config
(** [{ triple_table = "triples"; materialized = true }]. *)

val view_ddl : ?config:config -> Query.Ucq.t -> string
(** [CREATE [MATERIALIZED] VIEW <name>(<cols>) AS <select> [UNION …];]. *)

val cq_select : ?config:config -> Query.Cq.t -> string
(** The [SELECT … FROM triples …] body for one conjunctive query. *)

val rewriting_query : Rewriting.env -> string -> Rewriting.t -> string
(** [rewriting_query env qname r] renders the rewriting of query [qname]
    as a [SELECT] over the view relations. *)

val deployment_script : ?config:config -> Selector.result -> string
(** All view DDL statements followed by one commented query per
    rewriting. *)
