(** Semantic invariant checking for search states.

    A state is valid for a workload exactly when (Definition 2.3) its
    view set rewrites every workload query: unfolding each rewriting —
    substituting every view scan by the view's conjunctive definition —
    must yield a union of conjunctive queries equivalent to the query's
    reference semantics.  Equivalence is certified constructively by
    Chandra–Merlin containment mappings in both directions
    ({!Query.Cq.contained_in}), disjunct-wise for unions
    (Sagiv–Yannakakis).  On top of that semantic core, the checker
    validates structural well-formedness ({!State.structural_violations}),
    cost-model sanity (finite, non-negative, memo-consistent estimates)
    and state-graph edges (parent/child pairs replayable by a
    transition).

    Strict mode ([RDFVIEWS_STRICT=1] in the environment) makes the
    search assert these invariants on every accepted state — see
    {!Search.run_from} — and makes {!Transition.successors} check
    structural invariants on every state it produces. *)

type violation = {
  state_key : string;  (** {!State.key} of the offending state *)
  invariant : string;
      (** which invariant family: ["structure"], ["coverage"],
          ["rewriting"], ["equivalence"], ["cost"] or ["edge"] *)
  detail : string;  (** human-readable description *)
}

exception Violation of violation
(** Raised by {!assert_valid} (and, through it, by the search in strict
    mode) on the first violation found. *)

val violation_to_string : violation -> string

val strict_enabled : unit -> bool
(** Whether [RDFVIEWS_STRICT] is set to a truthy value (anything but
    [""], ["0"] and ["false"]). *)

val unfold : State.t -> Rewriting.t -> (Query.Cq.t list, string) result
(** Unfold a rewriting into the union of conjunctive queries over the
    triple table it computes, by substituting each view scan with the
    view's definition and propagating selections, projections, renames
    and join conditions symbolically.  Mirrors the reference executor
    ({!Engine.Executor}) operation for operation, including its join
    column semantics.  [Error] carries a description of the defect
    (unknown view, unknown column, empty union, ...). *)

type reference = (string * Query.Cq.t list) list
(** Per-query reference semantics: query name → disjuncts.  Singleton
    lists in the plain scenario; the reformulated union under
    pre-reformulation (§4.3). *)

val reference_of_workload : Query.Cq.t list -> reference
(** One singleton disjunct group per query — the plain (§3) scenario. *)

val reference_of_groups : (string * Query.Cq.t list) list -> reference
(** One group per query with the given disjuncts — the
    pre-reformulation (§4.3) scenario. *)

val reference_of_state : State.t -> (reference, string) result
(** Recover the reference from a valid state by unfolding its own
    rewritings — by construction the initial state's rewritings unfold
    to (a variable-renaming of) the workload itself, so the search can
    derive its strict-mode reference without extra plumbing. *)

val ucq_equivalent : Query.Cq.t list -> Query.Cq.t list -> bool
(** Disjunct-wise equivalence of two unions of conjunctive queries. *)

val check_structure : State.t -> violation list
(** {!State.structural_violations}, as typed violations. *)

val check_equivalence : reference -> State.t -> violation list
(** Every reference query has a rewriting; no rewriting targets an
    unknown query; each rewriting unfolds, has the query's arity, and is
    both sound (unfolding ⊑ query) and complete (query ⊑ unfolding). *)

val check_costs : Cost.t -> State.t -> violation list
(** Per-view and per-state estimates are finite and non-negative, the
    total is the weighted sum of its parts, and the memo table agrees
    with recomputation. *)

val check_edge : parent:State.t -> child:State.t -> violation list
(** The child's view set is producible from the parent by one transition
    (possibly followed by the aggressive-view-fusion collapse). *)

val check : ?estimator:Cost.t -> reference -> State.t -> violation list
(** All of the above except edges: structure, equivalence and — when an
    estimator is supplied — costs. *)

val assert_valid : ?estimator:Cost.t -> reference -> State.t -> unit
(** @raise Violation on the first problem {!check} finds. *)
