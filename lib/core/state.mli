(** States: candidate view sets with the rewritings of every workload
    query (Definition 2.3, §3.1).

    A state pairs a set of views with exactly one rewriting per workload
    query; every view participates in at least one rewriting (this is an
    invariant maintained by the transitions, checked by
    {!invariants_hold}).

    The record is private: build states with {!make} (or {!initial} /
    {!initial_union}) so the cached structural key stays coherent.
    Field access and pattern matching work as usual. *)

type key
(** Canonical identity of a state: the sorted multiset of its views'
    interned canonical ids plus a precomputed hash.  Two states are
    equivalent iff they have the same view sets (§3.1); comparing keys
    is O(|views|) integer work, with no canonical strings involved
    beyond each view's one-time interning. *)

type t = private {
  views : View.t list;
  rewritings : (string * Rewriting.t) list;
      (** query name → rewriting; columns align positionally with the
          query head *)
  mutable ident : key option;
      (** memoized {!key}; managed internally, never inspect it *)
}

val make :
  views:View.t list -> rewritings:(string * Rewriting.t) list -> t
(** The one constructor.  No validation is performed (see
    {!structural_violations} for that); the fresh state's key cache is
    empty. *)

val initial : Query.Cq.t list -> t
(** The initial state S0: one view per workload query (the query itself,
    with freshened variables), each query rewritten as a view scan
    (§5.1).  Query names must be distinct. *)

val initial_union : (string * Query.Cq.t list) list -> t
(** Initial state for the pre-reformulation scenario (§4.3): each query
    is rewritten as the union of the scans of its reformulations. *)

val env : t -> Rewriting.env
(** View name → columns, for algebra operations. *)

val key : t -> key
(** The state's identity key, computed once and cached on the state. *)

val equal_key : key -> key -> bool
(** Structural key equality — the identity used by {!Tbl}. *)

val hash_key : key -> int
(** Hash consistent with {!equal_key}; also used to pick a
    {!Shard_tbl} shard, so it must not depend on visit order. *)

val key_to_string : key -> string
(** Diagnostic rendering of a key: the sorted interned ids, dot
    separated.  Stable within a process; use only for reporting. *)

val key_string : t -> string
(** [key_to_string (key t)]. *)

module Tbl : Hashtbl.S with type key = key
(** Hash tables keyed by state identity ({!equal_key} / {!hash_key});
    the search's seen-set and the cost memo live in these. *)

val find_view : t -> string -> View.t option

val replace_view : t -> victim:View.t -> replacements:View.t list ->
  expression:Rewriting.t -> t * Delta.t
(** The common shape of all transitions: remove [victim] (identified by
    name), add [replacements], and substitute [expression] for the
    victim's symbol in every rewriting that mentions it.  Returns the
    successor and the exact delta (victim removed, replacements added,
    the substituted rewritings touched). *)

val remove_views : t -> View.t list -> t
(** Remove views (by name) without touching rewritings. *)

val structural_violations : t -> string list
(** Human-readable descriptions of every structural invariant the state
    breaks: ill-formed or dangling rewritings, views used by no
    rewriting, duplicate view names, views with Cartesian products.
    Empty on a well-formed state. *)

val invariants_hold : t -> bool
(** [structural_violations t = []]: all rewritings well-formed over the
    state's views; every view used by at least one rewriting; no view
    has a Cartesian product. *)

val to_string : t -> string
(** Multi-line rendering: the views, then the rewritings. *)

val pp : Format.formatter -> t -> unit
(** Formatter version of {!to_string}. *)
