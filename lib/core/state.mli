(** States: candidate view sets with the rewritings of every workload
    query (Definition 2.3, §3.1).

    A state pairs a set of views with exactly one rewriting per workload
    query; every view participates in at least one rewriting (this is an
    invariant maintained by the transitions, checked by
    {!invariants_hold}). *)

type t = {
  views : View.t list;
  rewritings : (string * Rewriting.t) list;
      (** query name → rewriting; columns align positionally with the
          query head *)
}

val initial : Query.Cq.t list -> t
(** The initial state S0: one view per workload query (the query itself,
    with freshened variables), each query rewritten as a view scan
    (§5.1).  Query names must be distinct. *)

val initial_union : (string * Query.Cq.t list) list -> t
(** Initial state for the pre-reformulation scenario (§4.3): each query
    is rewritten as the union of the scans of its reformulations. *)

val env : t -> Rewriting.env
(** View name → columns, for algebra operations. *)

val key : t -> string
(** Canonical identity of the state: the sorted multiset of the views'
    canonical forms.  Two states are equivalent iff they have the same
    view sets (§3.1). *)

val find_view : t -> string -> View.t option

val replace_view : t -> victim:View.t -> replacements:View.t list ->
  expression:Rewriting.t -> t
(** The common shape of all transitions: remove [victim], add
    [replacements], and substitute [expression] for the victim's symbol
    in every rewriting. *)

val remove_views : t -> View.t list -> t
(** Remove views without touching rewritings (used by fusion, which
    substitutes two symbols). *)

val structural_violations : t -> string list
(** Human-readable descriptions of every structural invariant the state
    breaks: ill-formed or dangling rewritings, views used by no
    rewriting, duplicate view names, views with Cartesian products.
    Empty on a well-formed state. *)

val invariants_hold : t -> bool
(** [structural_violations t = []]: all rewritings well-formed over the
    state's views; every view used by at least one rewriting; no view
    has a Cartesian product. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
