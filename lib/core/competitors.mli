(** The relational view-selection strategies of Theodoratos,
    Ligoudistianos and Sellis (DKE 39(3), 2001 — reference [21]), used as
    competitors in §6.2.

    All three follow a divide-and-conquer scheme: each workload query is
    developed in isolation into the full set of states reachable by edge
    removals and view breaks, and the per-query state sets are then
    recombined (adding the views of one state per query, fusing views
    when possible) into states covering the whole workload:

    - [Pruning] keeps every combination (pruning only dominated partial
      states), which is what exhausts memory on larger workloads;
    - [Greedy] keeps only the best combined state after each query is
      added;
    - [Heuristic] keeps, for each query, the minimal-cost state plus any
      state offering a view-fusion opportunity with the other queries'
      states.

    Memory is modeled by [max_states] in the search options: when the
    number of states materialized exceeds the cap, the run reports
    [out_of_memory = true] — reproducing the failures of Fig. 4. *)

type which = Pruning | Greedy | Heuristic

val name : which -> string
(** Display name of the competitor ("pruning", "greedy", "heuristic"). *)

val run : Cost.t -> Search.options -> which -> Query.Cq.t list -> Search.report
(** Runs the competitor.  When the strategy fails (memory cap or time
    budget hit before a full-coverage state exists), the report's best
    state is the trivial initial state and [rcr] is 0. *)
