(** Domain-safe dedup table over state keys.

    The shared seen-set of a parallel search: a {!State.Tbl} split into
    independently spinlocked shards selected by {!State.hash_key}, so
    domains contend only on keys hashing to the same shard.  Implements
    the same rank-reopen rule as the sequential engine's seen-table — a
    state is re-admitted only when rediscovered at a strictly lower
    stratum rank. *)

type t

val create : unit -> t
(** An empty table (16 shards, each with its own spinlock). *)

type outcome =
  | New  (** key never seen: admitted and recorded at [rank] *)
  | Reopened
      (** key seen before at a strictly higher rank: re-admitted, the
          recorded rank lowered to [rank] *)
  | Duplicate  (** key already recorded at a rank [<= rank]: rejected *)

val visit : t -> State.key -> int -> outcome
(** [visit t key rank] atomically applies the rank-reopen rule for
    [key] at stratum [rank].  The probe and the update are one critical
    section, so exactly one of two racing domains observes [New] for a
    given fresh key. *)

val mem : t -> State.key -> bool
(** [mem t key] is true once any domain has visited [key]. *)

val population : t -> int
(** Number of distinct keys across all shards (i.e. [New] outcomes). *)
