(* Semantic invariant checking for search states.

   The central certificate is Theorem-2.4-style equivalence: a state is
   valid for a workload exactly when, for every workload query, unfolding
   its rewriting (substituting each view scan by the view's definition)
   yields a union of conjunctive queries equivalent to the query's
   reference semantics.  Equivalence is certified constructively through
   Chandra-Merlin containment mappings in both directions, with the
   Sagiv-Yannakakis disjunct-wise criterion for unions. *)

type violation = { state_key : string; invariant : string; detail : string }

exception Violation of violation

let violation_to_string v =
  Printf.sprintf "[%s] %s" v.invariant v.detail

(* ---------- strict mode -------------------------------------------------- *)

let strict_enabled () =
  match Sys.getenv_opt "RDFVIEWS_STRICT" with
  | None | Some "" | Some "0" | Some "false" -> false
  | Some _ -> true

(* ---------- unfolding ---------------------------------------------------- *)

(* A branch of the unfolded expression: one conjunctive disjunct, with one
   output term per column.  Mirrors Engine.Executor faithfully, including
   its join column semantics: with explicit conditions, right columns
   whose names already appear on the left are dropped without being
   equated. *)
type branch = { terms : Query.Qterm.t list; body : Query.Atom.t list }

exception Unfold_error of string

let fail fmt = Printf.ksprintf (fun m -> raise (Unfold_error m)) fmt

let column_index cols c =
  let rec find i = function
    | [] -> fail "unknown column %s" c
    | c' :: rest -> if String.equal c c' then i else find (i + 1) rest
  in
  find 0 cols

(* Substitute a variable by a query term across a branch. *)
let subst_branch x replacement b =
  let f y = if String.equal x y then Some replacement else None in
  {
    terms =
      List.map
        (function
          | Query.Qterm.Var y when String.equal y x -> replacement
          | t -> t)
        b.terms;
    body = List.map (Query.Atom.subst f) b.body;
  }

(* Equate two output positions within a branch; [None] when the branch is
   unsatisfiable (two distinct constants). *)
let unify_positions b i j =
  match (List.nth b.terms i, List.nth b.terms j) with
  | Query.Qterm.Var x, Query.Qterm.Var y ->
    if String.equal x y then Some b else Some (subst_branch y (Query.Qterm.Var x) b)
  | Query.Qterm.Var x, (Query.Qterm.Cst _ as c)
  | (Query.Qterm.Cst _ as c), Query.Qterm.Var x ->
    Some (subst_branch x c b)
  | Query.Qterm.Cst a, Query.Qterm.Cst c ->
    if Rdf.Term.equal a c then Some b else None

let unify_constant b i term =
  match List.nth b.terms i with
  | Query.Qterm.Var x -> Some (subst_branch x (Query.Qterm.Cst term) b)
  | Query.Qterm.Cst c -> if Rdf.Term.equal c term then Some b else None

(* Column naming mirrors Engine.Materialize: head variable names, or
   positional c0..cn when the head carries constants (reformulation rules
   5 and 6 can bind head positions to constants). *)
let scan_columns (cq : Query.Cq.t) =
  let cols = List.filter_map Query.Qterm.var_name cq.head in
  if List.length cols = List.length cq.head then cols
  else List.mapi (fun i _ -> Printf.sprintf "c%d" i) cq.head

let rec eval state expr : string list * branch list =
  match expr with
  | Rewriting.Scan name -> (
    match State.find_view state name with
    | None -> fail "scan of unknown view %s" name
    | Some v ->
      (* column names come from the view's declared head; the instance is
         freshened so repeated scans of one view never alias (freshening
         preserves head positions, keeping columns aligned) *)
      let cols = scan_columns v.View.cq in
      let cq = Query.Cq.freshen v.View.cq in
      (cols, [ { terms = cq.Query.Cq.head; body = cq.Query.Cq.body } ]))
  | Rewriting.Select (conds, inner) ->
    let cols, branches = eval state inner in
    let apply b cond =
      match (b, cond) with
      | None, _ -> None
      | Some b, Rewriting.Eq_cst (c, term) ->
        unify_constant b (column_index cols c) term
      | Some b, Rewriting.Eq_col (c1, c2) ->
        unify_positions b (column_index cols c1) (column_index cols c2)
    in
    ( cols,
      List.filter_map
        (fun b -> List.fold_left apply (Some b) conds)
        branches )
  | Rewriting.Project (out_cols, inner) ->
    let cols, branches = eval state inner in
    let idx = List.map (column_index cols) out_cols in
    ( out_cols,
      List.map
        (fun b -> { b with terms = List.map (List.nth b.terms) idx })
        branches )
  | Rewriting.Rename (mapping, inner) ->
    let cols, branches = eval state inner in
    let renamed =
      List.map
        (fun c ->
          match List.assoc_opt c mapping with Some c' -> c' | None -> c)
        cols
    in
    (renamed, branches)
  | Rewriting.Join (conds, l, r) ->
    let lcols, lbranches = eval state l in
    let rcols, rbranches = eval state r in
    let pairs =
      match conds with
      | [] ->
        List.filter_map
          (fun c -> if List.mem c lcols then Some (c, c) else None)
          rcols
      | _ :: _ -> conds
    in
    let n_left = List.length lcols in
    let key_pairs =
      List.map
        (fun (a, b) -> (column_index lcols a, n_left + column_index rcols b))
        pairs
    in
    let kept_right =
      List.filter
        (fun (_, c) -> not (List.mem c lcols))
        (List.mapi (fun i c -> (n_left + i, c)) rcols)
    in
    let out_cols = lcols @ List.map snd kept_right in
    let keep_idx = List.init n_left (fun i -> i) @ List.map fst kept_right in
    let joined =
      List.concat_map
        (fun lb ->
          List.filter_map
            (fun rb ->
              let combined =
                { terms = lb.terms @ rb.terms; body = lb.body @ rb.body }
              in
              let unified =
                List.fold_left
                  (fun acc (i, j) ->
                    match acc with
                    | None -> None
                    | Some b -> unify_positions b i j)
                  (Some combined) key_pairs
              in
              Option.map
                (fun b -> { b with terms = List.map (List.nth b.terms) keep_idx })
                unified)
            rbranches)
        lbranches
    in
    (out_cols, joined)
  | Rewriting.Union parts -> (
    match List.map (eval state) parts with
    | [] -> fail "empty union"
    | ((cols, _) :: _) as results ->
      let arity = List.length cols in
      ( cols,
        List.concat_map
          (fun (cols', branches) ->
            if List.length cols' <> arity then
              fail "union branches disagree on arity (%d vs %d)"
                (List.length cols') arity;
            branches)
          results ))

(* An unfolded branch as a conjunctive query over the triple table.  A
   branch with an empty body can only arise from a view with an empty
   body, which Cq.make already forbids; Cq.make also rejects unsafe
   heads, which unfolding preserves (head variables always originate in
   some view head, hence appear in the body). *)
let unfold state expr =
  match eval state expr with
  | exception Unfold_error m -> Error m
  | _, branches -> (
    match
      List.mapi
        (fun i b ->
          Query.Cq.make
            ~name:(Printf.sprintf "u%d" i)
            ~head:b.terms ~body:b.body)
        branches
    with
    | disjuncts -> Ok disjuncts
    | exception Invalid_argument m -> Error m)

(* ---------- references --------------------------------------------------- *)

(* The reference semantics of each workload query: a union of conjunctive
   queries the rewriting must stay equivalent to.  Singleton lists except
   under pre-reformulation, where the reference is the reformulated
   union. *)
type reference = (string * Query.Cq.t list) list

let reference_of_workload queries =
  List.map (fun q -> (q.Query.Cq.name, [ q ])) queries

let reference_of_groups groups = groups

let reference_of_state state =
  let rec collect acc = function
    | [] -> Ok (List.rev acc)
    | (qname, expr) :: rest -> (
      match unfold state expr with
      | Error m -> Error (Printf.sprintf "query %s: %s" qname m)
      | Ok disjuncts -> collect ((qname, disjuncts) :: acc) rest)
  in
  collect [] state.State.rewritings

(* ---------- UCQ equivalence ---------------------------------------------- *)

(* Sagiv-Yannakakis: a CQ is contained in a union iff it is contained in
   one disjunct; a union is contained in a query set iff every disjunct
   is. *)
let ucq_contained_in a b =
  List.for_all
    (fun qa -> List.exists (fun qb -> Query.Cq.contained_in qa qb) b)
    a

let ucq_equivalent a b = ucq_contained_in a b && ucq_contained_in b a

(* ---------- the checks --------------------------------------------------- *)

let check_structure state =
  let key = State.key_string state in
  List.map
    (fun detail -> { state_key = key; invariant = "structure"; detail })
    (State.structural_violations state)

let check_equivalence reference state =
  let key = State.key_string state in
  let problems = ref [] in
  let note invariant detail = problems := { state_key = key; invariant; detail } :: !problems in
  List.iter
    (fun (qname, disjuncts) ->
      match List.assoc_opt qname state.State.rewritings with
      | None -> note "coverage" (Printf.sprintf "query %s has no rewriting" qname)
      | Some expr -> (
        let arity =
          match disjuncts with q :: _ -> Query.Cq.arity q | [] -> 0
        in
        match unfold state expr with
        | Error m ->
          note "rewriting"
            (Printf.sprintf "rewriting of %s does not unfold: %s" qname m)
        | Ok unfolded ->
          List.iter
            (fun (u : Query.Cq.t) ->
              if Query.Cq.arity u <> arity then
                note "rewriting"
                  (Printf.sprintf
                     "rewriting of %s has arity %d, query has arity %d" qname
                     (Query.Cq.arity u) arity))
            unfolded;
          if not (ucq_contained_in unfolded disjuncts) then
            note "equivalence"
              (Printf.sprintf
                 "rewriting of %s is unsound: no containment mapping \
                  certifies unfolding ⊑ query"
                 qname)
          else if not (ucq_contained_in disjuncts unfolded) then
            note "equivalence"
              (Printf.sprintf
                 "rewriting of %s is incomplete: no containment mapping \
                  certifies query ⊑ unfolding"
                 qname)))
    reference;
  let expected = List.map fst reference in
  List.iter
    (fun (qname, _) ->
      if not (List.mem qname expected) then
        note "coverage"
          (Printf.sprintf "rewriting for unknown query %s" qname))
    state.State.rewritings;
  List.rev !problems

let finite_nonneg x = Float.is_finite x && x >= 0.

let check_costs estimator state =
  let key = State.key_string state in
  let problems = ref [] in
  let note detail =
    problems := { state_key = key; invariant = "cost"; detail } :: !problems
  in
  List.iter
    (fun v ->
      let card = Cost.view_cardinality estimator v in
      let size = Cost.view_size estimator v in
      if not (finite_nonneg card) then
        note
          (Printf.sprintf "view %s has cardinality estimate %g" (View.name v)
             card);
      if not (finite_nonneg size) then
        note (Printf.sprintf "view %s has size estimate %g" (View.name v) size))
    state.State.views;
  let b = Cost.breakdown estimator state in
  if not (finite_nonneg b.Cost.vso_part) then
    note (Printf.sprintf "VSO estimate %g" b.Cost.vso_part);
  if not (finite_nonneg b.Cost.rec_part) then
    note (Printf.sprintf "REC estimate %g" b.Cost.rec_part);
  if not (finite_nonneg b.Cost.vmc_part) then
    note (Printf.sprintf "VMC estimate %g" b.Cost.vmc_part);
  if not (finite_nonneg b.Cost.total) then
    note (Printf.sprintf "total estimate %g" b.Cost.total);
  let w = Cost.weights estimator in
  let recombined =
    (w.Cost.cs *. b.Cost.vso_part)
    +. (w.Cost.cr *. b.Cost.rec_part)
    +. (w.Cost.cm *. b.Cost.vmc_part)
  in
  let scale = Float.max 1. (Float.abs b.Cost.total) in
  if Float.abs (recombined -. b.Cost.total) > 1e-9 *. scale then
    note
      (Printf.sprintf "total %g is not the weighted sum of its parts (%g)"
         b.Cost.total recombined);
  if not (Cost.memo_consistent estimator state) then
    note "memoized cost disagrees with recomputation";
  List.rev !problems

(* A parent/child edge is replayable when some single transition from the
   parent produces the child's view set (the search may further collapse
   the child by aggressive view fusion, so the fusion closure is accepted
   too). *)
let check_edge ~parent ~child =
  let target = State.key child in
  let reachable =
    List.exists
      (fun kind ->
        List.exists
          (fun succ ->
            State.equal_key (State.key succ) target
            || State.equal_key (State.key (Transition.fusion_closure succ)) target)
          (Transition.successors parent kind))
      Transition.all_kinds
  in
  if reachable then []
  else
    [
      {
        state_key = State.key_to_string target;
        invariant = "edge";
        detail = "child state is not reachable from parent by any transition";
      };
    ]

let check ?estimator reference state =
  check_structure state
  @ check_equivalence reference state
  @ (match estimator with
    | None -> []
    | Some e -> check_costs e state)

let assert_valid ?estimator reference state =
  match check ?estimator reference state with
  | [] -> ()
  | v :: _ -> raise (Violation v)
