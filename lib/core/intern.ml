(* The interner lives in the dependency-free [interning] library so that
   layers below core (notably Query.Plan's compiled-plan cache) share
   the same process-global id space; core re-exports it under its
   historical name. *)

include Interning
