let rec node_count = function
  | Rewriting.Scan _ -> 1
  | Rewriting.Select (_, e) | Rewriting.Project (_, e) | Rewriting.Rename (_, e)
    -> 1 + node_count e
  | Rewriting.Join (_, l, r) -> 1 + node_count l + node_count r
  | Rewriting.Union branches ->
    1 + List.fold_left (fun acc e -> acc + node_count e) 0 branches

let cond_columns = function
  | Rewriting.Eq_cst (col, _) -> [ col ]
  | Rewriting.Eq_col (a, b) -> [ a; b ]

let subset smaller bigger = List.for_all (fun c -> List.mem c bigger) smaller

(* map a condition's column names through the inverse of a renaming *)
let cond_preimage mapping cond =
  let back col =
    match List.find_opt (fun (_, target) -> String.equal target col) mapping with
    | Some (source, _) -> source
    | None -> col
  in
  match cond with
  | Rewriting.Eq_cst (col, term) -> Rewriting.Eq_cst (back col, term)
  | Rewriting.Eq_col (a, b) -> Rewriting.Eq_col (back a, back b)

let compose_renames base_columns inner outer =
  (* Rename outer (Rename inner e): a column c goes c -> inner(c) -> outer(inner(c));
     only actual columns of [e] may appear as sources *)
  let apply m col =
    match List.assoc_opt col m with Some c -> c | None -> col
  in
  List.filter_map
    (fun source ->
      let target = apply outer (apply inner source) in
      if String.equal source target then None else Some (source, target))
    base_columns

let is_identity_rename mapping =
  List.for_all (fun (a, b) -> String.equal a b) mapping

(* One top-level rewrite step on an expression whose children are already
   normalized; [None] when no rule applies. *)
let step env expr =
  match expr with
  | Rewriting.Select ([], e) -> Some e
  | Rewriting.Select (c1, Rewriting.Select (c2, e)) ->
    Some (Rewriting.Select (c1 @ c2, e))
  | Rewriting.Select (conds, Rewriting.Project (cols, e)) ->
    Some (Rewriting.Project (cols, Rewriting.Select (conds, e)))
  | Rewriting.Select (conds, Rewriting.Rename (mapping, e)) ->
    Some
      (Rewriting.Rename
         (mapping, Rewriting.Select (List.map (cond_preimage mapping) conds, e)))
  | Rewriting.Select (conds, Rewriting.Join (jc, l, r)) ->
    let lcols = Rewriting.columns env l in
    let rcols = Rewriting.columns env r in
    let to_left, rest =
      List.partition (fun c -> subset (cond_columns c) lcols) conds
    in
    let to_right, above =
      List.partition (fun c -> subset (cond_columns c) rcols) rest
    in
    if to_left = [] && to_right = [] then None
    else begin
      let wrap conds e = if conds = [] then e else Rewriting.Select (conds, e) in
      Some
        (wrap above
           (Rewriting.Join (jc, wrap to_left l, wrap to_right r)))
    end
  | Rewriting.Project (cols, e)
    when List.equal String.equal (Rewriting.columns env e) cols ->
    Some e
  | Rewriting.Project (cols, Rewriting.Project (_, e)) ->
    Some (Rewriting.Project (cols, e))
  | Rewriting.Rename (mapping, e) when is_identity_rename mapping -> Some e
  | Rewriting.Rename (outer, Rewriting.Rename (inner, e)) ->
    Some
      (Rewriting.Rename
         (compose_renames (Rewriting.columns env e) inner outer, e))
  | Rewriting.Union [ single ] -> Some single
  | Rewriting.Union branches
    when List.exists (function Rewriting.Union _ -> true | _ -> false) branches
    ->
    Some
      (Rewriting.Union
         (List.concat_map
            (function Rewriting.Union inner -> inner | other -> [ other ])
            branches))
  | Rewriting.Union branches ->
    let deduped =
      List.fold_left
        (fun acc branch ->
          if List.exists (Rewriting.equal branch) acc then acc
          else branch :: acc)
        [] branches
      |> List.rev
    in
    if List.length deduped < List.length branches then
      Some (Rewriting.Union deduped)
    else None
  | Rewriting.Scan _ | Rewriting.Select _ | Rewriting.Project _
  | Rewriting.Rename _ | Rewriting.Join _ ->
    None

let rec fixpoint env expr budget =
  if budget = 0 then expr
  else
    match step env expr with
    | Some expr' -> fixpoint env expr' (budget - 1)
    | None -> expr

let rec simplify env expr =
  let expr =
    match expr with
    | Rewriting.Scan _ -> expr
    | Rewriting.Select (conds, e) -> Rewriting.Select (conds, simplify env e)
    | Rewriting.Project (cols, e) -> Rewriting.Project (cols, simplify env e)
    | Rewriting.Rename (mapping, e) -> Rewriting.Rename (mapping, simplify env e)
    | Rewriting.Join (jc, l, r) ->
      Rewriting.Join (jc, simplify env l, simplify env r)
    | Rewriting.Union branches -> Rewriting.Union (List.map (simplify env) branches)
  in
  match step env expr with
  | Some expr' -> simplify env (fixpoint env expr' 64)
  | None -> expr

(* Whole-state normalization for final reporting: simplify every
   rewriting and say which queries actually changed, as a Delta (no
   views move, so only [rewritings_touched] is populated).  The search
   itself keeps the raw expressions — simplifying mid-search would
   change nothing semantically but would invalidate the bit-exact
   per-rewriting REC sharing of Cost.state_cost_delta. *)
let state_rewritings (s : State.t) =
  let env = State.env s in
  let touched = ref [] in
  let rewritings =
    List.map
      (fun (q, r) ->
        let r' = simplify env r in
        if not (Rewriting.equal r r') then touched := q :: !touched;
        (q, r'))
      s.State.rewritings
  in
  ( State.make ~views:s.State.views ~rewritings,
    {
      Delta.views_removed = [];
      views_added = [];
      rewritings_touched = List.rev !touched;
    } )
