type weights = {
  cs : float;
  cr : float;
  cm : float;
  c1 : float;
  c2 : float;
  f : float;
}

let default_weights = { cs = 1.; cr = 1.; cm = 0.5; c1 = 1.; c2 = 1.; f = 2. }

(* Estimator telemetry: memo-table hit rates for view profiles and
   state costs, the number of algebra nodes estimated, the time spent
   computing non-memoized state costs, and the incremental path's
   share (delta-applied vs full-recompute) with its latency
   distribution. *)
let obs_profile_hits = Obs.cached_counter "cost.profile.hits"
let obs_profile_misses = Obs.cached_counter "cost.profile.misses"
let obs_state_hits = Obs.cached_counter "cost.state.hits"
let obs_state_misses = Obs.cached_counter "cost.state.misses"
let obs_estimate_nodes = Obs.cached_counter "cost.estimate.nodes"
let obs_state_eval = Obs.cached_timer "cost.state.eval"
let obs_delta_incremental = Obs.cached_counter "cost.delta.incremental"
let obs_delta_full = Obs.cached_counter "cost.delta.full"
let obs_delta_hist = Obs.cached_histogram "cost.delta.ns"

type view_profile = {
  cardinality : float;
  distincts : (string * float) list;  (* per head column *)
  width : float;                      (* bytes per tuple *)
}

(* A memoized state cost with enough structure to be updated by a
   transition delta: the three unweighted components and the weighted
   per-rewriting REC contributions, in rewriting order.  [chain] counts
   incremental steps since the last full recompute; VSO and VMC drift
   by float re-association a little on every step, so the chain length
   is capped (REC reuse is exact: untouched rewritings keep their
   contribution bit-for-bit). *)
type node = {
  total : float;
  vso_n : float;
  rec_n : float;
  vmc_n : float;
  per_rw : (string * float) list;
  chain : int;
}

type t = {
  stats : Stats.Statistics.t;
  weights : weights;
  profiles : (string, view_profile) Hashtbl.t;  (* by view name *)
  costs : node State.Tbl.t;                     (* by state key *)
  mutable memo_hits : int;
  mutable memo_misses : int;
}

let create stats weights =
  {
    stats;
    weights;
    profiles = Hashtbl.create 1024;
    costs = State.Tbl.create 1024;
    memo_hits = 0;
    memo_misses = 0;
  }

let weights t = t.weights
let stats t = t.stats

(* The byte width of a head variable is the average term size of the
   column where it first occurs in the body. *)
let var_width stats (cq : Query.Cq.t) x =
  let column_of =
    List.find_map
      (fun a ->
        List.find_map
          (fun pos ->
            match Query.Atom.term_at a pos with
            | Query.Qterm.Var y when String.equal x y ->
              Some (match pos with Query.Atom.S -> `S | Query.Atom.P -> `P | Query.Atom.O -> `O)
            | Query.Qterm.Var _ | Query.Qterm.Cst _ -> None)
          Query.Atom.positions)
      cq.Query.Cq.body
  in
  match column_of with
  | Some col -> Stats.Statistics.avg_term_size stats col
  | None -> 8.

let profile t (v : View.t) =
  match Hashtbl.find_opt t.profiles (View.name v) with
  | Some p ->
    Obs.incr (obs_profile_hits ());
    p
  | None ->
    Obs.incr (obs_profile_misses ());
    let cq = v.View.cq in
    let cardinality = Stats.Cardinality.estimate_cq t.stats cq in
    let cols = View.columns v in
    let distincts =
      List.map (fun x -> (x, Stats.Cardinality.var_distinct t.stats cq x)) cols
    in
    let width =
      List.fold_left (fun acc x -> acc +. var_width t.stats cq x) 0. cols
    in
    let p = { cardinality; distincts; width } in
    Hashtbl.add t.profiles (View.name v) p;
    p

let view_cardinality t v = (profile t v).cardinality

let view_size t v =
  let p = profile t v in
  p.cardinality *. Float.max p.width 1.

let view_maintenance t v =
  Float.pow t.weights.f (float_of_int (View.atom_count v))

let vso t (s : State.t) =
  List.fold_left (fun acc v -> acc +. view_size t v) 0. s.State.views

let vmc t (s : State.t) =
  List.fold_left (fun acc v -> acc +. view_maintenance t v) 0. s.State.views

(* Estimation result for a sub-expression. *)
type estimate = {
  card : float;
  dist : (string * float) list;
  cpu : float;
  io : float;
}

let dist_of est col =
  match List.assoc_opt col est.dist with
  | Some d -> Float.max 1. (Float.min d (Float.max est.card 1.))
  | None -> Float.max 1. est.card

let set_dist dist col value =
  (col, value) :: List.remove_assoc col dist

let rec estimate t (s : State.t) expr =
  Obs.incr (obs_estimate_nodes ());
  match expr with
  | Rewriting.Scan name -> (
    match State.find_view s name with
    | Some v ->
      let p = profile t v in
      { card = p.cardinality; dist = p.distincts; cpu = 0.; io = p.cardinality }
    | None -> failwith ("Cost.estimate: unknown view " ^ name))
  | Rewriting.Select (conds, inner) ->
    let e = estimate t s inner in
    let apply acc = function
      | Rewriting.Eq_cst (col, _) ->
        let d = dist_of acc col in
        { acc with card = acc.card /. d; dist = set_dist acc.dist col 1. }
      | Rewriting.Eq_col (c1, c2) ->
        let d1 = dist_of acc c1 in
        let d2 = dist_of acc c2 in
        let small = Float.min d1 d2 in
        let dist = set_dist (set_dist acc.dist c1 small) c2 small in
        { acc with card = acc.card /. Float.max d1 d2; dist }
    in
    let out = List.fold_left apply e conds in
    { out with cpu = e.cpu +. e.card }
  | Rewriting.Project (cols, inner) ->
    let e = estimate t s inner in
    { e with dist = List.filter (fun (c, _) -> List.mem c cols) e.dist }
  | Rewriting.Rename (mapping, inner) ->
    let e = estimate t s inner in
    let rename (c, d) =
      match List.assoc_opt c mapping with Some c' -> (c', d) | None -> (c, d)
    in
    { e with dist = List.map rename e.dist }
  | Rewriting.Join (conds, l, r) ->
    let el = estimate t s l in
    let er = estimate t s r in
    let pairs =
      match conds with
      | [] ->
        let left_cols = List.map fst el.dist in
        List.filter_map
          (fun (c, _) -> if List.mem c left_cols then Some (c, c) else None)
          er.dist
      | _ :: _ -> conds
    in
    let selectivity =
      List.fold_left
        (fun acc (a, b) ->
          acc /. Float.max (dist_of el a) (dist_of er b))
        1. pairs
    in
    let card = Float.max (el.card *. er.card *. selectivity) 0. in
    let joined_dist =
      let from_left = el.dist in
      let from_right =
        List.filter (fun (c, _) -> not (List.mem_assoc c from_left)) er.dist
      in
      List.map
        (fun (c, d) ->
          match List.assoc_opt c pairs with
          | Some b -> (c, Float.min d (dist_of er b))
          | None -> (c, d))
        from_left
      @ from_right
    in
    {
      card;
      dist = joined_dist;
      cpu = el.cpu +. er.cpu +. el.card +. er.card +. card;
      io = el.io +. er.io;
    }
  | Rewriting.Union branches ->
    let es = List.map (estimate t s) branches in
    let card = List.fold_left (fun acc e -> acc +. e.card) 0. es in
    let dist =
      match es with
      | [] -> []
      | first :: _ ->
        List.map
          (fun (c, _) ->
            (c, List.fold_left (fun acc e -> acc +. dist_of e c) 0. es))
          first.dist
    in
    {
      card;
      dist;
      cpu = List.fold_left (fun acc e -> acc +. e.cpu +. e.card) 0. es;
      io = List.fold_left (fun acc e -> acc +. e.io) 0. es;
    }

let rewriting_cost t s expr =
  let e = estimate t s expr in
  (e.io, e.cpu)

let rewriting_cardinality t s expr = (estimate t s expr).card

(* One rewriting's weighted REC contribution, c1·io + c2·cpu. *)
let weighted_rw t s expr =
  let io, cpu = rewriting_cost t s expr in
  (t.weights.c1 *. io) +. (t.weights.c2 *. cpu)

let sum_per_rw per_rw = List.fold_left (fun acc (_, c) -> acc +. c) 0. per_rw

let rec_cost t (s : State.t) =
  List.fold_left
    (fun acc (_, r) -> acc +. weighted_rw t s r)
    0. s.State.rewritings

let total_of t ~vso_n ~rec_n ~vmc_n =
  (t.weights.cs *. vso_n) +. (t.weights.cr *. rec_n) +. (t.weights.cm *. vmc_n)

(* The reference path: everything from scratch.  Both [breakdown] and
   the memo's full recomputes go through here, so the strict-mode
   cross-checks compare the incremental result against exactly this. *)
let node_full t (s : State.t) =
  let vso_n = vso t s in
  let vmc_n = vmc t s in
  let per_rw =
    List.map (fun (q, r) -> (q, weighted_rw t s r)) s.State.rewritings
  in
  let rec_n = sum_per_rw per_rw in
  { total = total_of t ~vso_n ~rec_n ~vmc_n; vso_n; rec_n; vmc_n; per_rw; chain = 0 }

type breakdown = { vso_part : float; rec_part : float; vmc_part : float; total : float }

let breakdown t s =
  let n = node_full t s in
  { vso_part = n.vso_n; rec_part = n.rec_n; vmc_part = n.vmc_n; total = n.total }

(* Cumulative memo totals live in the estimator (two concurrent
   estimators — e.g. bench warm-up vs. measured run — must not
   cross-contaminate the sampled [cost_memo] trace events).  One event
   every 256 lookups keeps the trace volume negligible next to the
   per-state events. *)
let sample_memo t =
  let total = t.memo_hits + t.memo_misses in
  if total land 255 = 0 then
    Obs.Trace.cost_memo (Obs.Trace.global ()) ~hits:t.memo_hits
      ~misses:t.memo_misses

let memo_counts t = (t.memo_hits, t.memo_misses)

let note_hit t =
  t.memo_hits <- t.memo_hits + 1;
  Obs.incr (obs_state_hits ());
  sample_memo t

let note_miss t =
  t.memo_misses <- t.memo_misses + 1;
  Obs.incr (obs_state_misses ());
  sample_memo t

let state_cost t s =
  let key = State.key s in
  match State.Tbl.find_opt t.costs key with
  | Some n ->
    note_hit t;
    n.total
  | None ->
    note_miss t;
    let n = Obs.time (obs_state_eval ()) (fun () -> node_full t s) in
    State.Tbl.add t.costs key n;
    n.total

(* ---------- incremental costing ------------------------------------------ *)

(* Incremental chains are cut after this many steps: REC reuse is exact,
   but VSO/VMC accumulate one float re-association per step, so a
   periodic full recompute keeps the drift orders of magnitude below the
   strict-mode tolerance. *)
let max_chain = 24

let delta_tolerance = 1e-6

(* Read per call (not lazily once): tests toggle the variable with
   Unix.putenv mid-process.  One getenv per newly accepted state is
   noise next to the estimation work. *)
let strict_now () =
  match Sys.getenv_opt "RDFVIEWS_STRICT" with
  | None | Some "" | Some "0" | Some "false" -> false
  | Some _ -> true

exception Delta_mismatch

(* parent − removed + added, with only the touched rewritings
   re-estimated in the child.  Untouched rewritings are physically
   shared with the parent and scan only surviving views, whose profiles
   are memoized by name — their cached contributions are bit-exact. *)
let node_delta t parent_node (d : Delta.t) (child : State.t) =
  let sum f vs = List.fold_left (fun acc v -> acc +. f v) 0. vs in
  let vso_n =
    parent_node.vso_n
    -. sum (view_size t) d.Delta.views_removed
    +. sum (view_size t) d.Delta.views_added
  in
  let vmc_n =
    parent_node.vmc_n
    -. sum (view_maintenance t) d.Delta.views_removed
    +. sum (view_maintenance t) d.Delta.views_added
  in
  let touched q = List.exists (String.equal q) d.Delta.rewritings_touched in
  let per_rw =
    List.map2
      (fun (q, cached) (q', r) ->
        if not (String.equal q q') then raise Delta_mismatch;
        if touched q then (q, weighted_rw t child r) else (q, cached))
      parent_node.per_rw child.State.rewritings
  in
  let rec_n = sum_per_rw per_rw in
  {
    total = total_of t ~vso_n ~rec_n ~vmc_n;
    vso_n;
    rec_n;
    vmc_n;
    per_rw;
    chain = parent_node.chain + 1;
  }

let node_of t s =
  let key = State.key s in
  match State.Tbl.find_opt t.costs key with
  | Some n -> n
  | None ->
    let n = node_full t s in
    State.Tbl.add t.costs key n;
    n

let state_cost_delta t ~parent ~delta child =
  let key = State.key child in
  match State.Tbl.find_opt t.costs key with
  | Some n ->
    note_hit t;
    n.total
  | None ->
    note_miss t;
    let parent_node = node_of t parent in
    let n =
      if parent_node.chain >= max_chain then begin
        Obs.incr (obs_delta_full ());
        Obs.time (obs_state_eval ()) (fun () -> node_full t child)
      end
      else
        let h = obs_delta_hist () in
        let t0 = if Obs.histogram_live h then Obs.now_ns () else 0 in
        match node_delta t parent_node delta child with
        | n ->
          Obs.incr (obs_delta_incremental ());
          if Obs.histogram_live h then Obs.observe h (Obs.now_ns () - t0);
          n
        | exception (Delta_mismatch | Invalid_argument _) ->
          (* the delta does not line up with the child's rewritings (a
             caller outside the transition pipeline); fall back to the
             reference path *)
          Obs.incr (obs_delta_full ());
          Obs.time (obs_state_eval ()) (fun () -> node_full t child)
    in
    if strict_now () && n.chain > 0 then begin
      let reference = node_full t child in
      let scale =
        Float.max 1. (Float.max (Float.abs n.total) (Float.abs reference.total))
      in
      if Float.abs (n.total -. reference.total) > delta_tolerance *. scale then
        failwith
          (Printf.sprintf
             "Cost.state_cost_delta: incremental cost %.12g diverged from \
              full recompute %.12g on state %s"
             n.total reference.total (State.key_string child))
    end;
    State.Tbl.add t.costs key n;
    n.total

let memo_consistent t s =
  match State.Tbl.find_opt t.costs (State.key s) with
  | None -> true
  | Some memoized ->
    let fresh = (node_full t s).total in
    let scale =
      Float.max 1. (Float.max (Float.abs memoized.total) (Float.abs fresh))
    in
    Float.abs (memoized.total -. fresh) <= delta_tolerance *. scale
