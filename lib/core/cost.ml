type weights = {
  cs : float;
  cr : float;
  cm : float;
  c1 : float;
  c2 : float;
  f : float;
}

let default_weights = { cs = 1.; cr = 1.; cm = 0.5; c1 = 1.; c2 = 1.; f = 2. }

(* Estimator telemetry: memo-table hit rates for view profiles and
   state costs, the number of algebra nodes estimated, and the time
   spent computing non-memoized state costs. *)
let obs_profile_hits = Obs.cached_counter "cost.profile.hits"
let obs_profile_misses = Obs.cached_counter "cost.profile.misses"
let obs_state_hits = Obs.cached_counter "cost.state.hits"
let obs_state_misses = Obs.cached_counter "cost.state.misses"
let obs_estimate_nodes = Obs.cached_counter "cost.estimate.nodes"
let obs_state_eval = Obs.cached_timer "cost.state.eval"

type view_profile = {
  cardinality : float;
  distincts : (string * float) list;  (* per head column *)
  width : float;                      (* bytes per tuple *)
}

type t = {
  stats : Stats.Statistics.t;
  weights : weights;
  profiles : (string, view_profile) Hashtbl.t;  (* by view name *)
  costs : (string, float) Hashtbl.t;            (* by state key *)
}

let create stats weights =
  { stats; weights; profiles = Hashtbl.create 1024; costs = Hashtbl.create 1024 }

let weights t = t.weights
let stats t = t.stats

(* The byte width of a head variable is the average term size of the
   column where it first occurs in the body. *)
let var_width stats (cq : Query.Cq.t) x =
  let column_of =
    List.find_map
      (fun a ->
        List.find_map
          (fun pos ->
            match Query.Atom.term_at a pos with
            | Query.Qterm.Var y when String.equal x y ->
              Some (match pos with Query.Atom.S -> `S | Query.Atom.P -> `P | Query.Atom.O -> `O)
            | Query.Qterm.Var _ | Query.Qterm.Cst _ -> None)
          Query.Atom.positions)
      cq.Query.Cq.body
  in
  match column_of with
  | Some col -> Stats.Statistics.avg_term_size stats col
  | None -> 8.

let profile t (v : View.t) =
  match Hashtbl.find_opt t.profiles (View.name v) with
  | Some p ->
    Obs.incr (obs_profile_hits ());
    p
  | None ->
    Obs.incr (obs_profile_misses ());
    let cq = v.View.cq in
    let cardinality = Stats.Cardinality.estimate_cq t.stats cq in
    let cols = View.columns v in
    let distincts =
      List.map (fun x -> (x, Stats.Cardinality.var_distinct t.stats cq x)) cols
    in
    let width =
      List.fold_left (fun acc x -> acc +. var_width t.stats cq x) 0. cols
    in
    let p = { cardinality; distincts; width } in
    Hashtbl.add t.profiles (View.name v) p;
    p

let view_cardinality t v = (profile t v).cardinality

let view_size t v =
  let p = profile t v in
  p.cardinality *. Float.max p.width 1.

let vso t (s : State.t) =
  List.fold_left (fun acc v -> acc +. view_size t v) 0. s.State.views

let vmc t (s : State.t) =
  List.fold_left
    (fun acc v -> acc +. Float.pow t.weights.f (float_of_int (View.atom_count v)))
    0. s.State.views

(* Estimation result for a sub-expression. *)
type estimate = {
  card : float;
  dist : (string * float) list;
  cpu : float;
  io : float;
}

let dist_of est col =
  match List.assoc_opt col est.dist with
  | Some d -> Float.max 1. (Float.min d (Float.max est.card 1.))
  | None -> Float.max 1. est.card

let set_dist dist col value =
  (col, value) :: List.remove_assoc col dist

let rec estimate t (s : State.t) expr =
  Obs.incr (obs_estimate_nodes ());
  match expr with
  | Rewriting.Scan name -> (
    match State.find_view s name with
    | Some v ->
      let p = profile t v in
      { card = p.cardinality; dist = p.distincts; cpu = 0.; io = p.cardinality }
    | None -> failwith ("Cost.estimate: unknown view " ^ name))
  | Rewriting.Select (conds, inner) ->
    let e = estimate t s inner in
    let apply acc = function
      | Rewriting.Eq_cst (col, _) ->
        let d = dist_of acc col in
        { acc with card = acc.card /. d; dist = set_dist acc.dist col 1. }
      | Rewriting.Eq_col (c1, c2) ->
        let d1 = dist_of acc c1 in
        let d2 = dist_of acc c2 in
        let small = Float.min d1 d2 in
        let dist = set_dist (set_dist acc.dist c1 small) c2 small in
        { acc with card = acc.card /. Float.max d1 d2; dist }
    in
    let out = List.fold_left apply e conds in
    { out with cpu = e.cpu +. e.card }
  | Rewriting.Project (cols, inner) ->
    let e = estimate t s inner in
    { e with dist = List.filter (fun (c, _) -> List.mem c cols) e.dist }
  | Rewriting.Rename (mapping, inner) ->
    let e = estimate t s inner in
    let rename (c, d) =
      match List.assoc_opt c mapping with Some c' -> (c', d) | None -> (c, d)
    in
    { e with dist = List.map rename e.dist }
  | Rewriting.Join (conds, l, r) ->
    let el = estimate t s l in
    let er = estimate t s r in
    let pairs =
      match conds with
      | [] ->
        let left_cols = List.map fst el.dist in
        List.filter_map
          (fun (c, _) -> if List.mem c left_cols then Some (c, c) else None)
          er.dist
      | _ :: _ -> conds
    in
    let selectivity =
      List.fold_left
        (fun acc (a, b) ->
          acc /. Float.max (dist_of el a) (dist_of er b))
        1. pairs
    in
    let card = Float.max (el.card *. er.card *. selectivity) 0. in
    let joined_dist =
      let from_left = el.dist in
      let from_right =
        List.filter (fun (c, _) -> not (List.mem_assoc c from_left)) er.dist
      in
      List.map
        (fun (c, d) ->
          match List.assoc_opt c pairs with
          | Some b -> (c, Float.min d (dist_of er b))
          | None -> (c, d))
        from_left
      @ from_right
    in
    {
      card;
      dist = joined_dist;
      cpu = el.cpu +. er.cpu +. el.card +. er.card +. card;
      io = el.io +. er.io;
    }
  | Rewriting.Union branches ->
    let es = List.map (estimate t s) branches in
    let card = List.fold_left (fun acc e -> acc +. e.card) 0. es in
    let dist =
      match es with
      | [] -> []
      | first :: _ ->
        List.map
          (fun (c, _) ->
            (c, List.fold_left (fun acc e -> acc +. dist_of e c) 0. es))
          first.dist
    in
    {
      card;
      dist;
      cpu = List.fold_left (fun acc e -> acc +. e.cpu +. e.card) 0. es;
      io = List.fold_left (fun acc e -> acc +. e.io) 0. es;
    }

let rewriting_cost t s expr =
  let e = estimate t s expr in
  (e.io, e.cpu)

let rewriting_cardinality t s expr = (estimate t s expr).card

let rec_cost t (s : State.t) =
  List.fold_left
    (fun acc (_, r) ->
      let io, cpu = rewriting_cost t s r in
      acc +. (t.weights.c1 *. io) +. (t.weights.c2 *. cpu))
    0. s.State.rewritings

type breakdown = { vso_part : float; rec_part : float; vmc_part : float; total : float }

let breakdown t s =
  let vso_part = vso t s in
  let rec_part = rec_cost t s in
  let vmc_part = vmc t s in
  let total =
    (t.weights.cs *. vso_part) +. (t.weights.cr *. rec_part)
    +. (t.weights.cm *. vmc_part)
  in
  { vso_part; rec_part; vmc_part; total }

(* Cumulative memo totals, tallied in plain refs (not the Obs counters,
   which may be absent) so the trace can sample them.  One [cost_memo]
   event every 256 lookups keeps the trace volume negligible next to
   the per-state events. *)
let memo_hits_total = ref 0
let memo_misses_total = ref 0

let sample_memo () =
  let total = !memo_hits_total + !memo_misses_total in
  if total land 255 = 0 then
    Obs.Trace.cost_memo (Obs.Trace.global ()) ~hits:!memo_hits_total
      ~misses:!memo_misses_total

let state_cost t s =
  let key = State.key s in
  match Hashtbl.find_opt t.costs key with
  | Some c ->
    Obs.incr (obs_state_hits ());
    memo_hits_total := !memo_hits_total + 1;
    sample_memo ();
    c
  | None ->
    Obs.incr (obs_state_misses ());
    memo_misses_total := !memo_misses_total + 1;
    sample_memo ();
    let c = Obs.time (obs_state_eval ()) (fun () -> (breakdown t s).total) in
    Hashtbl.add t.costs key c;
    c

let memo_consistent t s =
  match Hashtbl.find_opt t.costs (State.key s) with
  | None -> true
  | Some memoized ->
    let fresh = (breakdown t s).total in
    let scale = Float.max 1. (Float.max (Float.abs memoized) (Float.abs fresh)) in
    Float.abs (memoized -. fresh) <= 1e-9 *. scale
