(** Algebraic simplification of rewritings.

    Transitions build rewritings by textual substitution (§3.2), which
    piles up projections, renamings and nested selections.  Before
    handing rewritings to an execution engine (§6.6 suggests translating
    them into the target platform's logical plans), this module
    normalizes them:

    - nested selections are merged, empty selections dropped;
    - consecutive projections collapse; projections that keep every
      column disappear;
    - renamings compose; identity renamings disappear;
    - selections commute through projections and renamings towards the
      scans, and split across join branches when they mention only one
      side;
    - nested unions flatten and duplicate branches collapse.

    The result is executor-equivalent (property-tested) and usually
    reads like the paper's π(σ(v1 ⋈ v2)) examples. *)

val simplify : Rewriting.env -> Rewriting.t -> Rewriting.t
(** Normalize the expression.  The output columns (names and order) are
    preserved exactly.  Raises [Failure] on unknown view symbols. *)

val node_count : Rewriting.t -> int
(** Number of operator nodes, for measuring the simplification. *)

val state_rewritings : State.t -> State.t * Delta.t
(** Normalize every rewriting of the state.  The views are unchanged (so
    the state's interned {!State.key} is preserved); the returned delta
    has empty view lists and names the queries whose expression actually
    changed.  Used on final states for reporting — the search keeps raw
    expressions so the incremental cost path can share untouched
    rewriting estimates bit-for-bit. *)
