type reasoning =
  | No_reasoning
  | Saturation of Rdf.Schema.t
  | Pre_reformulation of Rdf.Schema.t
  | Post_reformulation of Rdf.Schema.t

type result = {
  report : Search.report;
  recommended : Query.Ucq.t list;
  rewritings : (string * Rewriting.t) list;
  stats : Stats.Statistics.t;
  store_for_materialization : Rdf.Store.t;
}

let reasoning_name = function
  | No_reasoning -> "none"
  | Saturation _ -> "saturation"
  | Pre_reformulation _ -> "pre-reformulation"
  | Post_reformulation _ -> "post-reformulation"

let plain_views state =
  List.map (fun v -> Query.Ucq.of_cq v.View.cq) state.State.views

(* final rewritings are normalized (Simplify) so that downstream engines
   receive compact select-project-join plans *)
let simplified_rewritings state =
  let simplified, _touched = Simplify.state_rewritings state in
  simplified.State.rewritings

(* Statistics and the store views are materialized against, per mode. *)
let statistics_for ~store = function
  | No_reasoning | Pre_reformulation _ ->
    (Stats.Statistics.create ~mode:Stats.Statistics.Plain store, store)
  | Saturation schema ->
    let saturated = Rdf.Entailment.saturated_copy store schema in
    (Stats.Statistics.create ~mode:Stats.Statistics.Plain saturated, saturated)
  | Post_reformulation schema ->
    (Stats.Statistics.create ~mode:(Stats.Statistics.Reformulated schema) store, store)

(* Materializable view definitions for the best state, per mode. *)
let recommended_views reasoning state =
  match reasoning with
  | No_reasoning | Saturation _ | Pre_reformulation _ -> plain_views state
  | Post_reformulation schema ->
    List.map
      (fun v -> Query.Ucq.dedup (Query.Reformulation.reformulate v.View.cq schema))
      state.State.views

let run_from_state ?(jobs = 1) ?(parallel_mode = Parallel_search.Deterministic)
    ~store ~reasoning ~options initial =
  let stats, store_for_materialization = statistics_for ~store reasoning in
  let estimator = Cost.create stats options.Search.weights in
  let report =
    Parallel_search.run_from ~jobs ~mode:parallel_mode estimator options
      initial
  in
  {
    report;
    recommended = recommended_views reasoning report.Search.best;
    rewritings = simplified_rewritings report.Search.best;
    stats;
    store_for_materialization;
  }

(* The standard initial state of a workload, per mode (§5.1 / §4.3). *)
let initial_state reasoning workload =
  match reasoning with
  | No_reasoning | Saturation _ | Post_reformulation _ -> State.initial workload
  | Pre_reformulation schema ->
    State.initial_union
      (List.map
         (fun q ->
           ( q.Query.Cq.name,
             Query.Ucq.disjuncts (Query.Reformulation.reformulate q schema) ))
         workload)

let select ?jobs ?parallel_mode ~store ~reasoning ~options workload =
  run_from_state ?jobs ?parallel_mode ~store ~reasoning ~options
    (initial_state reasoning workload)
