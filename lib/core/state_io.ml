(* Line-oriented text format for states, so that a search result can be
   written to disk and later re-certified by `rdfviews check`.

   A file holds one or more states:

     state
     view v1(?x, ?y) :- t(?x, <ex:p>, ?y).
     view v2(?z) :- t(?z, <ex:q>, <ex:c>).
     rewrite q1 := project[x, y](join[y=z](scan v1, scan v2))

   Views reuse the workload query syntax (Query.Parser); the view's name
   is the symbol rewritings scan.  Rewriting expressions:

     scan NAME
     select[COND, ...](E)        COND: col=<uri> | col="lit" | col=col
     project[col, ...](E)
     join[lcol=rcol, ...](E, E)  join[](E, E) is the natural join
     rename[old->new, ...](E)
     union(E, E, ...)

   Constants in conditions are always written bracketed (<uri>, "lit",
   _:blank) so a bare identifier on the right of '=' always reads as a
   column name. *)

exception Syntax_error of string

let fail fmt = Printf.ksprintf (fun m -> raise (Syntax_error m)) fmt

(* ---------- writing ------------------------------------------------------ *)

(* Constants bracketed unconditionally, unlike Rdf.Term.to_string which
   leaves ':'-free URIs bare (a bare URI would be read back as a column
   name). *)
let term_to_text = function
  | Rdf.Term.Uri u -> "<" ^ u ^ ">"
  | Rdf.Term.Blank b -> "_:" ^ b
  | Rdf.Term.Literal l -> "\"" ^ l ^ "\""

let cond_to_text = function
  | Rewriting.Eq_cst (c, term) -> c ^ "=" ^ term_to_text term
  | Rewriting.Eq_col (a, b) -> a ^ "=" ^ b

let rec expr_to_text = function
  | Rewriting.Scan name -> "scan " ^ name
  | Rewriting.Select (conds, e) ->
    Printf.sprintf "select[%s](%s)"
      (String.concat ", " (List.map cond_to_text conds))
      (expr_to_text e)
  | Rewriting.Project (cols, e) ->
    Printf.sprintf "project[%s](%s)" (String.concat ", " cols) (expr_to_text e)
  | Rewriting.Join (conds, l, r) ->
    Printf.sprintf "join[%s](%s, %s)"
      (String.concat ", " (List.map (fun (a, b) -> a ^ "=" ^ b) conds))
      (expr_to_text l) (expr_to_text r)
  | Rewriting.Rename (mapping, e) ->
    Printf.sprintf "rename[%s](%s)"
      (String.concat ", " (List.map (fun (a, b) -> a ^ "->" ^ b) mapping))
      (expr_to_text e)
  | Rewriting.Union branches ->
    Printf.sprintf "union(%s)" (String.concat ", " (List.map expr_to_text branches))

let state_to_text (s : State.t) =
  let buffer = Buffer.create 256 in
  Buffer.add_string buffer "state\n";
  List.iter
    (fun v ->
      Buffer.add_string buffer "view ";
      (* query_to_text may span lines; a view entry is one line *)
      Buffer.add_string buffer
        (String.concat " "
           (List.filter
              (fun s -> s <> "")
              (String.split_on_char '\n'
                 (Query.Parser.query_to_text v.View.cq)
              |> List.map String.trim)));
      Buffer.add_char buffer '\n')
    s.State.views;
  List.iter
    (fun (q, r) ->
      Buffer.add_string buffer
        (Printf.sprintf "rewrite %s := %s\n" q (expr_to_text r)))
    s.State.rewritings;
  Buffer.contents buffer

let states_to_text states =
  "# rdfviews state file\n" ^ String.concat "\n" (List.map state_to_text states)

let write_file path states =
  let oc = open_out path in
  output_string oc (states_to_text states);
  close_out oc

(* ---------- expression parsing ------------------------------------------- *)

type token =
  | Ident of string
  | Constant of Rdf.Term.t
  | Lbracket | Rbracket | Lparen | Rparen
  | Comma | Equal | Arrow

(* '-' stays out of identifiers so 'a->b' tokenizes as an arrow pair;
   column and view names are variable-shaped (letters, digits, '_', '.'). *)
let is_ident_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '.'

let tokenize text =
  let n = String.length text in
  let tokens = ref [] in
  let emit t = tokens := t :: !tokens in
  let i = ref 0 in
  while !i < n do
    let c = text.[!i] in
    if c = ' ' || c = '\t' then incr i
    else if c = '[' then (emit Lbracket; incr i)
    else if c = ']' then (emit Rbracket; incr i)
    else if c = '(' then (emit Lparen; incr i)
    else if c = ')' then (emit Rparen; incr i)
    else if c = ',' then (emit Comma; incr i)
    else if c = '=' then (emit Equal; incr i)
    else if c = '-' && !i + 1 < n && text.[!i + 1] = '>' then begin
      emit Arrow;
      i := !i + 2
    end
    else if c = '<' then begin
      match String.index_from_opt text !i '>' with
      | None -> fail "unterminated <uri> in %S" text
      | Some close ->
        emit (Constant (Rdf.Term.Uri (String.sub text (!i + 1) (close - !i - 1))));
        i := close + 1
    end
    else if c = '"' then begin
      match String.index_from_opt text (!i + 1) '"' with
      | None -> fail "unterminated string in %S" text
      | Some close ->
        emit
          (Constant (Rdf.Term.Literal (String.sub text (!i + 1) (close - !i - 1))));
        i := close + 1
    end
    else if c = '_' && !i + 1 < n && text.[!i + 1] = ':' then begin
      let j = ref (!i + 2) in
      while !j < n && is_ident_char text.[!j] do incr j done;
      emit (Constant (Rdf.Term.Blank (String.sub text (!i + 2) (!j - !i - 2))));
      i := !j
    end
    else if is_ident_char c then begin
      let j = ref !i in
      while !j < n && is_ident_char text.[!j] do incr j done;
      emit (Ident (String.sub text !i (!j - !i)));
      i := !j
    end
    else fail "unexpected character %C in %S" c text
  done;
  List.rev !tokens

(* Recursive-descent over the token list. *)
let parse_expr text =
  let tokens = ref (tokenize text) in
  let peek () = match !tokens with [] -> None | t :: _ -> Some t in
  let advance () = match !tokens with [] -> () | _ :: rest -> tokens := rest in
  let expect t what =
    match !tokens with
    | t' :: rest when t' = t -> tokens := rest
    | _ -> fail "expected %s in %S" what text
  in
  let ident what =
    match !tokens with
    | Ident s :: rest ->
      tokens := rest;
      s
    | _ -> fail "expected %s in %S" what text
  in
  let bracketed element =
    expect Lbracket "'['";
    match peek () with
    | Some Rbracket ->
      advance ();
      []
    | _ ->
      let first = element () in
      let rec more acc =
        match peek () with
        | Some Comma ->
          advance ();
          more (element () :: acc)
        | _ ->
          expect Rbracket "']'";
          List.rev acc
      in
      first :: more []
  in
  let cond () =
    let c = ident "a column name" in
    expect Equal "'='";
    match !tokens with
    | Constant term :: rest ->
      tokens := rest;
      Rewriting.Eq_cst (c, term)
    | Ident c' :: rest ->
      tokens := rest;
      Rewriting.Eq_col (c, c')
    | _ -> fail "expected a column or constant after '=' in %S" text
  in
  let col_pair () =
    let a = ident "a left column" in
    expect Equal "'='";
    let b = ident "a right column" in
    (a, b)
  in
  let rename_pair () =
    let a = ident "a column name" in
    expect Arrow "'->'";
    let b = ident "a column name" in
    (a, b)
  in
  let rec expr () =
    match ident "an operator (scan/select/project/join/rename/union)" with
    | "scan" -> Rewriting.Scan (ident "a view name after scan")
    | "select" ->
      let conds = bracketed cond in
      let e = parenthesized_one () in
      Rewriting.Select (conds, e)
    | "project" ->
      let cols = bracketed (fun () -> ident "a column name") in
      let e = parenthesized_one () in
      Rewriting.Project (cols, e)
    | "join" ->
      let conds = bracketed col_pair in
      expect Lparen "'(' after join[...]";
      let l = expr () in
      expect Comma "',' between join operands";
      let r = expr () in
      expect Rparen "')' closing join";
      Rewriting.Join (conds, l, r)
    | "rename" ->
      let mapping = bracketed rename_pair in
      let e = parenthesized_one () in
      Rewriting.Rename (mapping, e)
    | "union" ->
      expect Lparen "'(' after union";
      let first = expr () in
      let rec more acc =
        match peek () with
        | Some Comma ->
          advance ();
          more (expr () :: acc)
        | _ ->
          expect Rparen "')' closing union";
          List.rev acc
      in
      Rewriting.Union (first :: more [])
    | op -> fail "unknown operator %s in %S" op text
  and parenthesized_one () =
    expect Lparen "'('";
    let e = expr () in
    expect Rparen "')'";
    e
  in
  let e = expr () in
  if !tokens <> [] then fail "trailing tokens in %S" text;
  e

(* ---------- file parsing -------------------------------------------------- *)

let parse_states text =
  let lines = String.split_on_char '\n' text in
  let states = ref [] in
  let views = ref [] in
  let rewritings = ref [] in
  let open_state = ref false in
  let flush () =
    if !open_state then begin
      states :=
        State.make ~views:(List.rev !views) ~rewritings:(List.rev !rewritings)
        :: !states;
      views := [];
      rewritings := []
    end;
    open_state := false
  in
  List.iteri
    (fun lineno raw ->
      let line = String.trim raw in
      let where = lineno + 1 in
      if line = "" || line.[0] = '#' then ()
      else if line = "state" then begin
        flush ();
        open_state := true
      end
      else if String.length line > 5 && String.sub line 0 5 = "view " then begin
        if not !open_state then fail "line %d: view outside a state block" where;
        let cq =
          try Query.Parser.parse_query (String.sub line 5 (String.length line - 5))
          with Query.Parser.Parse_error m -> fail "line %d: %s" where m
        in
        views := View.of_cq cq :: !views
      end
      else if String.length line > 8 && String.sub line 0 8 = "rewrite " then begin
        if not !open_state then
          fail "line %d: rewrite outside a state block" where;
        let rest = String.sub line 8 (String.length line - 8) in
        let name, body =
          match String.index_opt rest ':' with
          | Some i
            when i + 1 < String.length rest
                 && rest.[i + 1] = '='
                 && String.trim (String.sub rest 0 i) <> "" ->
            ( String.trim (String.sub rest 0 i),
              String.sub rest (i + 2) (String.length rest - i - 2) )
          | Some _ | None -> fail "line %d: expected NAME := EXPR" where
        in
        let expr =
          try parse_expr body with Syntax_error m -> fail "line %d: %s" where m
        in
        rewritings := (name, expr) :: !rewritings
      end
      else fail "line %d: expected 'state', 'view ...' or 'rewrite ...'" where)
    lines;
  flush ();
  List.rev !states

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let contents = really_input_string ic n in
  close_in ic;
  parse_states contents
