(** Parallel view-selection search over OCaml 5 domains.

    Shards the search frontier across domains behind the same
    {!Search.options} interface as the sequential engine.  Two modes:

    - {!Deterministic} (default): worker domains speculatively
      precompute the pure half of each expansion (successor generation,
      AVF collapse, key forcing) while the coordinating domain replays
      the exact sequential worklist order and performs every accounting
      decision itself.  The report — created / duplicates / discarded /
      explored counts, best state and best cost — is {e identical} to
      the sequential run's, for every strategy and stop condition.

    - {!Free}: per-domain work-stealing deques over a shared sharded
      seen-table.  Higher throughput, but counters and exploration
      order are schedule-dependent; on runs that complete (no time or
      state budget hit) the explored distinct-state set reaches the
      same fixpoint, so the best cost matches the sequential result up
      to cost ties.  Event traces cover the coordinating domain only,
      and an [on_accept] hook must be safe to call from any domain.

    Falls back to {!Search.run_from} when [jobs <= 1], on OCaml 4.x
    ({!Multicore.available} is false), and for [Gstr] — the greedy
    strategy is a chain of closures each seeded by the previous stage's
    single best state, which serializes by construction.

    [RDFVIEWS_STRICT=1] works under both modes: deterministic mode
    asserts on the coordinating domain exactly as the sequential engine
    does; free mode asserts on whichever domain admits the state, with
    that domain's estimator. *)

type mode = Deterministic | Free

val mode_name : mode -> string
(** ["deterministic"] or ["free"]. *)

val mode_of_string : string -> mode option
(** Inverse of {!mode_name}; also accepts the ["det"] abbreviation.
    [None] on anything else. *)

val run_from :
  ?jobs:int -> ?mode:mode -> Cost.t -> Search.options -> State.t -> Search.report
(** [run_from ~jobs ~mode estimator options initial] — like
    {!Search.run_from} with the work spread over [jobs] domains
    (coordinator included; [jobs] is clamped to at least 1).  Defaults:
    [jobs = 1] (sequential), [mode = Deterministic]. *)

val run :
  ?jobs:int ->
  ?mode:mode ->
  Stats.Statistics.t ->
  Search.options ->
  Query.Cq.t list ->
  Search.report
(** Like {!Search.run}, parallelized the same way. *)
