type key = { ids : int array; khash : int }

type t = {
  views : View.t list;
  rewritings : (string * Rewriting.t) list;
  mutable ident : key option;  (* cached structural key; never observable *)
}

let make ~views ~rewritings = { views; rewritings; ident = None }

let check_distinct_names queries =
  let names = List.map (fun q -> q.Query.Cq.name) queries in
  if List.length (List.sort_uniq String.compare names) <> List.length names
  then invalid_arg "State.initial: duplicate query names"

let initial queries =
  check_distinct_names queries;
  let entries =
    List.map
      (fun q ->
        let view = View.make (Query.Cq.freshen q) in
        (view, (q.Query.Cq.name, Rewriting.Scan (View.name view))))
      queries
  in
  make ~views:(List.map fst entries) ~rewritings:(List.map snd entries)

let initial_union groups =
  let entries =
    List.map
      (fun (qname, disjuncts) ->
        if disjuncts = [] then invalid_arg "State.initial_union: empty group";
        let views =
          List.map (fun d -> View.make (Query.Cq.freshen d)) disjuncts
        in
        let branches = List.map (fun v -> Rewriting.Scan (View.name v)) views in
        let expr =
          match branches with [ single ] -> single | _ -> Rewriting.Union branches
        in
        (views, (qname, expr)))
      groups
  in
  make
    ~views:(List.concat_map fst entries)
    ~rewritings:(List.map snd entries)

let env t =
  let table = Hashtbl.create (List.length t.views) in
  List.iter (fun v -> Hashtbl.replace table (View.name v) (View.columns v)) t.views;
  table

(* FNV-1a over the sorted id multiset, the same mixing as Rdf.Term.hash.
   The sorted array makes the key order-insensitive: two states with the
   same views in any order collide, as §3.1's set semantics requires. *)
let key t =
  match t.ident with
  | Some k -> k
  | None ->
    let ids = Array.of_list (List.map View.intern_id t.views) in
    Array.sort Int.compare ids;
    let h = ref 0x811c9dc5 in
    Array.iter (fun id -> h := (!h lxor id) * 0x01000193 land max_int) ids;
    let k = { ids; khash = !h } in
    t.ident <- Some k;
    k

let equal_key a b =
  a.khash = b.khash
  && Array.length a.ids = Array.length b.ids
  && (let n = Array.length a.ids in
      let rec eq i = i = n || (a.ids.(i) = b.ids.(i) && eq (i + 1)) in
      eq 0)

let hash_key k = k.khash

let key_to_string k =
  String.concat "." (Array.to_list (Array.map string_of_int k.ids))

let key_string t = key_to_string (key t)

module Tbl = Hashtbl.Make (struct
  type nonrec t = key

  let equal = equal_key
  let hash = hash_key
end)

let find_view t name =
  List.find_opt (fun v -> String.equal (View.name v) name) t.views

(* View names are process-unique ("v<id>"), so name equality identifies
   the victim exactly — including across State_io reloads, where the
   physical identity the old ==-based filter relied on does not
   survive.  Only the rewritings that actually scan the victim are
   substituted; the untouched ones are shared with the parent, which is
   what makes the reported delta's [rewritings_touched] exact. *)
let replace_view t ~victim ~replacements ~expression =
  let vname = View.name victim in
  let views =
    replacements
    @ List.filter (fun v -> not (String.equal (View.name v) vname)) t.views
  in
  let touched = ref [] in
  let rewritings =
    List.map
      (fun (q, r) ->
        if Rewriting.mentions vname r then begin
          touched := q :: !touched;
          (q, Rewriting.substitute vname expression r)
        end
        else (q, r))
      t.rewritings
  in
  ( make ~views ~rewritings,
    {
      Delta.views_removed = [ victim ];
      views_added = replacements;
      rewritings_touched = List.rev !touched;
    } )

let remove_views t victims =
  let names = List.map View.name victims in
  make
    ~views:
      (List.filter
         (fun v -> not (List.exists (String.equal (View.name v)) names))
         t.views)
    ~rewritings:t.rewritings

let structural_violations t =
  let env = env t in
  let problems = ref [] in
  let note p = problems := p :: !problems in
  let names = List.map View.name t.views in
  if List.length (List.sort_uniq String.compare names) <> List.length names
  then note "duplicate view name";
  List.iter
    (fun (q, r) ->
      if not (Rewriting.well_formed env r) then
        note
          (Printf.sprintf "rewriting of %s is ill-formed: %s" q
             (Rewriting.to_string r));
      List.iter
        (fun v ->
          if not (Hashtbl.mem env v) then
            note
              (Printf.sprintf "rewriting of %s scans unknown view %s" q v))
        (Rewriting.views_used r))
    t.rewritings;
  let used =
    List.concat_map (fun (_, r) -> Rewriting.views_used r) t.rewritings
  in
  List.iter
    (fun v ->
      if not (List.mem (View.name v) used) then
        note (Printf.sprintf "view %s used by no rewriting" (View.name v)))
    t.views;
  List.iter
    (fun v ->
      if not (Query.Cq.is_connected v.View.cq) then
        note
          (Printf.sprintf "view %s has a Cartesian product: %s" (View.name v)
             (View.to_string v)))
    t.views;
  List.rev !problems

let invariants_hold t = structural_violations t = []

let to_string t =
  let views = String.concat "\n  " (List.map View.to_string t.views) in
  let rewritings =
    String.concat "\n  "
      (List.map (fun (q, r) -> q ^ " = " ^ Rewriting.to_string r) t.rewritings)
  in
  "views:\n  " ^ views ^ "\nrewritings:\n  " ^ rewritings

let pp fmt t = Format.pp_print_string fmt (to_string t)
