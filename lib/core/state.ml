type t = {
  views : View.t list;
  rewritings : (string * Rewriting.t) list;
}

let check_distinct_names queries =
  let names = List.map (fun q -> q.Query.Cq.name) queries in
  if List.length (List.sort_uniq String.compare names) <> List.length names
  then invalid_arg "State.initial: duplicate query names"

let initial queries =
  check_distinct_names queries;
  let entries =
    List.map
      (fun q ->
        let view = View.make (Query.Cq.freshen q) in
        (view, (q.Query.Cq.name, Rewriting.Scan (View.name view))))
      queries
  in
  { views = List.map fst entries; rewritings = List.map snd entries }

let initial_union groups =
  let entries =
    List.map
      (fun (qname, disjuncts) ->
        if disjuncts = [] then invalid_arg "State.initial_union: empty group";
        let views =
          List.map (fun d -> View.make (Query.Cq.freshen d)) disjuncts
        in
        let branches = List.map (fun v -> Rewriting.Scan (View.name v)) views in
        let expr =
          match branches with [ single ] -> single | _ -> Rewriting.Union branches
        in
        (views, (qname, expr)))
      groups
  in
  {
    views = List.concat_map fst entries;
    rewritings = List.map snd entries;
  }

let env t =
  let table = Hashtbl.create (List.length t.views) in
  List.iter (fun v -> Hashtbl.replace table (View.name v) (View.columns v)) t.views;
  table

let key t =
  String.concat "\x01" (List.sort String.compare (List.map View.canonical t.views))

let find_view t name =
  List.find_opt (fun v -> String.equal (View.name v) name) t.views

let replace_view t ~victim ~replacements ~expression =
  let views =
    replacements @ List.filter (fun v -> not (v == victim)) t.views
  in
  let rewritings =
    List.map
      (fun (q, r) -> (q, Rewriting.substitute (View.name victim) expression r))
      t.rewritings
  in
  { views; rewritings }

let remove_views t victims =
  { t with views = List.filter (fun v -> not (List.memq v victims)) t.views }

let structural_violations t =
  let env = env t in
  let problems = ref [] in
  let note p = problems := p :: !problems in
  let names = List.map View.name t.views in
  if List.length (List.sort_uniq String.compare names) <> List.length names
  then note "duplicate view name";
  List.iter
    (fun (q, r) ->
      if not (Rewriting.well_formed env r) then
        note
          (Printf.sprintf "rewriting of %s is ill-formed: %s" q
             (Rewriting.to_string r));
      List.iter
        (fun v ->
          if not (Hashtbl.mem env v) then
            note
              (Printf.sprintf "rewriting of %s scans unknown view %s" q v))
        (Rewriting.views_used r))
    t.rewritings;
  let used =
    List.concat_map (fun (_, r) -> Rewriting.views_used r) t.rewritings
  in
  List.iter
    (fun v ->
      if not (List.mem (View.name v) used) then
        note (Printf.sprintf "view %s used by no rewriting" (View.name v)))
    t.views;
  List.iter
    (fun v ->
      if not (Query.Cq.is_connected v.View.cq) then
        note
          (Printf.sprintf "view %s has a Cartesian product: %s" (View.name v)
             (View.to_string v)))
    t.views;
  List.rev !problems

let invariants_hold t = structural_violations t = []

let to_string t =
  let views = String.concat "\n  " (List.map View.to_string t.views) in
  let rewritings =
    String.concat "\n  "
      (List.map (fun (q, r) -> q ^ " = " ^ Rewriting.to_string r) t.rewritings)
  in
  "views:\n  " ^ views ^ "\nrewritings:\n  " ^ rewritings

let pp fmt t = Format.pp_print_string fmt (to_string t)
