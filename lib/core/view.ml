(* Derived identity data (canonical strings, interned ids) is memoized
   in plain mutable option fields rather than Lazy.t: parallel search
   domains share view objects across sibling states, and concurrently
   forcing a lazy from two domains raises Lazy.Undefined.  The
   computations are deterministic and Intern.of_canonical is idempotent,
   so a racy duplicate computation writes the same value twice — benign
   — while a lazy would crash. *)
type t = {
  id : int;
  cq : Query.Cq.t;
  mutable canon : string option;
  mutable canon_body : string option;
  mutable iid : Intern.id option;
  mutable body_iid : Intern.id option;
}

let counter = Atomic.make 0

let validate who cq =
  if not (Query.Cq.is_connected cq) then
    invalid_arg
      ("View." ^ who ^ ": view with Cartesian product: " ^ Query.Cq.to_string cq);
  let head_names = List.filter_map Query.Qterm.var_name cq.Query.Cq.head in
  if List.length (List.sort_uniq String.compare head_names)
     <> List.length head_names
  then
    invalid_arg
      ("View." ^ who ^ ": duplicate head variable: " ^ Query.Cq.to_string cq)

let wrap id cq =
  { id; cq; canon = None; canon_body = None; iid = None; body_iid = None }

let fresh_id () = Atomic.fetch_and_add counter 1 + 1

let make cq =
  validate "make" cq;
  let id = fresh_id () in
  wrap id (Query.Cq.rename cq (Printf.sprintf "v%d" id))

let of_cq cq =
  validate "of_cq" cq;
  wrap (fresh_id ()) cq

let name v = v.cq.Query.Cq.name

let head v = v.cq.Query.Cq.head

let columns v =
  List.filter_map Query.Qterm.var_name v.cq.Query.Cq.head

let atom_count v = Query.Cq.atom_count v.cq

let canonical v =
  match v.canon with
  | Some s -> s
  | None ->
    let s = Query.Cq.canonical_head_set_string v.cq in
    v.canon <- Some s;
    s

let canonical_body v =
  match v.canon_body with
  | Some s -> s
  | None ->
    let s = Query.Cq.canonical_body_string v.cq in
    v.canon_body <- Some s;
    s

let intern_id v =
  match v.iid with
  | Some i -> i
  | None ->
    let i = Intern.of_canonical (canonical v) in
    v.iid <- Some i;
    i

let body_intern_id v =
  match v.body_iid with
  | Some i -> i
  | None ->
    let i = Intern.of_canonical (canonical_body v) in
    v.body_iid <- Some i;
    i

(* coordinator_only: callers must know no other domain is making views. *)
let reset_counter () = Atomic.set counter 0 [@@coordinator_only]

let to_string v = Query.Cq.to_string v.cq

let pp fmt v = Format.pp_print_string fmt (to_string v)
