type t = {
  id : int;
  cq : Query.Cq.t;
  canon : string Lazy.t;
  canon_body : string Lazy.t;
  iid : Intern.id Lazy.t;
  body_iid : Intern.id Lazy.t;
}

let counter = ref 0

let validate who cq =
  if not (Query.Cq.is_connected cq) then
    invalid_arg
      ("View." ^ who ^ ": view with Cartesian product: " ^ Query.Cq.to_string cq);
  let head_names = List.filter_map Query.Qterm.var_name cq.Query.Cq.head in
  if List.length (List.sort_uniq String.compare head_names)
     <> List.length head_names
  then
    invalid_arg
      ("View." ^ who ^ ": duplicate head variable: " ^ Query.Cq.to_string cq)

let wrap id cq =
  let canon = lazy (Query.Cq.canonical_head_set_string cq) in
  let canon_body = lazy (Query.Cq.canonical_body_string cq) in
  {
    id;
    cq;
    canon;
    canon_body;
    iid = lazy (Intern.of_canonical (Lazy.force canon));
    body_iid = lazy (Intern.of_canonical (Lazy.force canon_body));
  }

let make cq =
  validate "make" cq;
  incr counter;
  let id = !counter in
  wrap id (Query.Cq.rename cq (Printf.sprintf "v%d" id))

let of_cq cq =
  validate "of_cq" cq;
  incr counter;
  wrap !counter cq

let name v = v.cq.Query.Cq.name

let head v = v.cq.Query.Cq.head

let columns v =
  List.filter_map Query.Qterm.var_name v.cq.Query.Cq.head

let atom_count v = Query.Cq.atom_count v.cq

let canonical v = Lazy.force v.canon

let canonical_body v = Lazy.force v.canon_body

let intern_id v = Lazy.force v.iid

let body_intern_id v = Lazy.force v.body_iid

let reset_counter () = counter := 0

let to_string v = Query.Cq.to_string v.cq

let pp fmt v = Format.pp_print_string fmt (to_string v)
