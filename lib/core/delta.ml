(* Transition deltas: the difference between a state and one of its
   successors, reported by Transition alongside each successor so Cost
   can update the parent's cost instead of recomputing the child from
   scratch.

   Views are identified by name throughout: view names ("v<id>") are
   process-unique, so name equality is exact here, and the delta stays
   meaningful across State_io round-trips where physical identity does
   not survive. *)

type t = {
  views_removed : View.t list;
  views_added : View.t list;
  rewritings_touched : string list;  (* query names, in rewriting order *)
}

let empty = { views_removed = []; views_added = []; rewritings_touched = [] }

let mem_name name views =
  List.exists (fun v -> String.equal (View.name v) name) views

(* [compose a b] is the delta of applying [a] then [b].  A view added by
   [a] and removed again by [b] cancels out of both lists; view names
   never repeat across a state's lifetime, so no other overlap is
   possible (a name removed by [a] is absent from the intermediate state
   and cannot be removed again by [b]). *)
let compose a b =
  {
    views_removed =
      a.views_removed
      @ List.filter
          (fun v -> not (mem_name (View.name v) a.views_added))
          b.views_removed;
    views_added =
      List.filter
        (fun v -> not (mem_name (View.name v) b.views_removed))
        a.views_added
      @ b.views_added;
    rewritings_touched =
      List.sort_uniq String.compare (a.rewritings_touched @ b.rewritings_touched);
  }

let to_string d =
  let names vs = String.concat "," (List.map View.name vs) in
  Printf.sprintf "-[%s] +[%s] ~[%s]" (names d.views_removed)
    (names d.views_added)
    (String.concat "," d.rewritings_touched)
