type join_edge = {
  atom_a : int;
  pos_a : Query.Atom.position;
  atom_b : int;
  pos_b : Query.Atom.position;
  var : string;
}

let compare_join_edge a b =
  let c = Int.compare a.atom_a b.atom_a in
  if c <> 0 then c
  else
    let c = Query.Atom.compare_position a.pos_a b.pos_a in
    if c <> 0 then c
    else
      let c = Int.compare a.atom_b b.atom_b in
      if c <> 0 then c
      else
        let c = Query.Atom.compare_position a.pos_b b.pos_b in
        if c <> 0 then c else String.compare a.var b.var

let equal_join_edge a b = compare_join_edge a b = 0

type selection_edge = {
  atom : int;
  pos : Query.Atom.position;
  constant : Rdf.Term.t;
}

let occurrences (q : Query.Cq.t) =
  let table = Hashtbl.create 16 in
  List.iteri
    (fun i a ->
      List.iter
        (fun pos ->
          match Query.Atom.term_at a pos with
          | Query.Qterm.Var x ->
            let prev = Option.value (Hashtbl.find_opt table x) ~default:[] in
            Hashtbl.replace table x (prev @ [ (i, pos) ])
          | Query.Qterm.Cst _ -> ())
        Query.Atom.positions)
    q.Query.Cq.body;
  table

let join_edges q =
  let table = occurrences q in
  let edges = ref [] in
  Hashtbl.iter
    (fun var places ->
      let rec pairs = function
        | [] -> ()
        | (i, pi) :: rest ->
          List.iter
            (fun (j, pj) ->
              if i <> j then
                let (atom_a, pos_a), (atom_b, pos_b) =
                  if i < j then ((i, pi), (j, pj)) else ((j, pj), (i, pi))
                in
                edges := { atom_a; pos_a; atom_b; pos_b; var } :: !edges)
            rest;
          pairs rest
      in
      pairs places)
    table;
  List.sort compare_join_edge !edges

let selection_edges q =
  List.concat
    (List.mapi
       (fun i a ->
         List.filter_map
           (fun pos ->
             match Query.Atom.term_at a pos with
             | Query.Qterm.Cst c -> Some { atom = i; pos; constant = c }
             | Query.Qterm.Var _ -> None)
           Query.Atom.positions)
       q.Query.Cq.body)

(* Connected components over a node set, given a multiset of undirected
   edges (atom index pairs). *)
let components nodes edges =
  let adjacency = Hashtbl.create 16 in
  List.iter
    (fun (a, b) ->
      if List.mem a nodes && List.mem b nodes then begin
        Hashtbl.add adjacency a b;
        Hashtbl.add adjacency b a
      end)
    edges;
  let visited = Hashtbl.create 16 in
  let rec bfs frontier acc =
    match frontier with
    | [] -> acc
    | n :: rest ->
      let next =
        List.filter
          (fun m -> not (Hashtbl.mem visited m))
          (Hashtbl.find_all adjacency n)
      in
      List.iter (fun m -> Hashtbl.replace visited m ()) next;
      bfs (next @ rest) (n :: acc)
  in
  List.filter_map
    (fun n ->
      if Hashtbl.mem visited n then None
      else begin
        Hashtbl.replace visited n ();
        Some (List.sort_uniq Int.compare (bfs [ n ] []))
      end)
    nodes

let edge_pairs q = List.map (fun e -> (e.atom_a, e.atom_b)) (join_edges q)

let is_connected_subset q nodes =
  match nodes with
  | [] -> false
  | _ -> List.length (components nodes (edge_pairs q)) = 1

(* The VB enumeration calls the connectivity test O(2^n) times on one
   view; recomputing (and re-sorting) the edge list inside every call
   dominated its profile.  The checker closes over the edge pairs
   computed once. *)
let subset_checker q =
  let pairs = edge_pairs q in
  fun nodes ->
    match nodes with
    | [] -> false
    | _ -> List.length (components nodes pairs) = 1

let components_without_edge q edge =
  let all = List.mapi (fun i _ -> i) q.Query.Cq.body in
  (* remove exactly one occurrence of the edge's endpoints pair *)
  let removed = ref false in
  let surviving =
    List.filter
      (fun e ->
        if (not !removed) && equal_join_edge e edge then begin
          removed := true;
          false
        end
        else true)
      (join_edges q)
  in
  components all (List.map (fun e -> (e.atom_a, e.atom_b)) surviving)

let components_without_occurrence q i pos =
  let all = List.mapi (fun k _ -> k) q.Query.Cq.body in
  let surviving =
    List.filter
      (fun e ->
        not
          ((e.atom_a = i && Query.Atom.equal_position e.pos_a pos)
          || (e.atom_b = i && Query.Atom.equal_position e.pos_b pos)))
      (join_edges q)
  in
  components all (List.map (fun e -> (e.atom_a, e.atom_b)) surviving)

let edge_to_string e =
  Printf.sprintf "n%d.%s=n%d.%s (%s)" e.atom_a
    (Query.Atom.position_name e.pos_a)
    e.atom_b
    (Query.Atom.position_name e.pos_b)
    e.var

let selection_to_string e =
  Printf.sprintf "n%d.%s=%s" e.atom
    (Query.Atom.position_name e.pos)
    (Rdf.Term.to_string e.constant)
