(* Typedtree-based concurrency-safety analyzer.

   Usage: analyze.exe [--json|--sarif] [--inventory] [--list-rules]
                      [--root DIR] [PATH ...]

   Reads the .cmt files produced by `dune build` (dune passes -bin-annot
   to every compilation, and the lib/*/dune files also request it
   explicitly) under the given paths — default `_build/default/lib` —
   and machine-checks the shared-state discipline documented in
   CONCURRENCY.md:

   1. *Inventory*: every piece of module-level mutable state (toplevel
      `ref`s, hashtables, `Atomic.t`s, buffers, queues, arrays, DLS
      keys) and every mutable or lock-annotated record field, with its
      classification (atomic / DLS-backed / lock-guarded / plain).

   2. *Call graph + effect footprint*: a reference graph over all
      library functions; each function's write footprint on shared
      cells, with the set of spinlocks lexically held at each write or
      call (lock scopes are `with_lock`-shaped critical sections via
      the Multicore shim, matched by the lock's field or binding name).
      Footprints propagate bottom-up: a callee's unguarded writes are
      discharged at call sites that hold the owning lock.

   3. *Contract check* against the attribute vocabulary:
      - [@guarded_by "lock"] on a record field or [@@guarded_by] on a
        toplevel binding: every mutation must lexically hold the named
        lock (rule `unguarded-write`).
      - plain (unannotated) module-level mutable cells must not be
        written on any path reachable from a worker-domain entry point
        — a function referenced inside a closure passed to
        `Multicore.spawn` (rule `racy-global-write`).
      - [@@coordinator_only] functions must be unreachable from worker
        entry points (rule `coordinator-escape`).
      - [@@domain_safe] functions must have an empty unguarded write
        footprint and must not reach a coordinator-only function
        (rule `domain-unsafe`).
      - a local bound to a DLS read (`Multicore.Dls.get`, `Obs.global`,
        `Obs.Trace.global`) must not be captured by a closure passed to
        `Multicore.spawn` (rule `dls-capture`).

   Suppression mirrors tool/lint: a comment containing
   "analyze: allow <rule-id>" on the offending source line or the line
   directly above it.  Exit codes: 0 clean, 1 violations, 2 usage or
   read error. *)

open Typedtree

let usage =
  "analyze.exe [--json|--sarif] [--inventory] [--list-rules] [--root DIR] \
   [PATH ...]\n\
   Concurrency-safety analysis over .cmt files (default path: \
   _build/default/lib).\n\
   Exit codes: 0 clean, 1 violations found, 2 usage/read error."

(* ---------- rules --------------------------------------------------------- *)

let rules =
  [
    ( "unguarded-write",
      "mutation of a [@guarded_by]-annotated cell without lexically holding \
       the named lock (with_lock via the Multicore shim)" );
    ( "racy-global-write",
      "write to an unannotated module-level mutable cell on a path reachable \
       from a worker-domain entry point (a function referenced in a closure \
       passed to Multicore.spawn)" );
    ( "coordinator-escape",
      "[@@coordinator_only] function reachable from a worker-domain entry \
       point" );
    ( "domain-unsafe",
      "[@@domain_safe] function whose propagated footprint contains an \
       unguarded shared-cell write, or which can reach a \
       [@@coordinator_only] function" );
    ( "dls-capture",
      "domain-local (DLS) value — Multicore.Dls.get, Obs.global, \
       Obs.Trace.global — captured by a closure passed to Multicore.spawn; \
       DLS handles must be re-read on the domain that uses them" );
  ]

(* ---------- diagnostics --------------------------------------------------- *)

type diag = { d_file : string; d_line : int; d_col : int; d_rule : string; d_msg : string }

let diags : diag list ref = ref []
let suppressed = ref 0
let units_checked = ref 0
let hard_errors : string list ref = ref []
let root_dir = ref "."

(* Source-line cache for suppression comments; keyed by the relative
   path recorded in the cmt locations. *)
let line_cache : (string, string array) Hashtbl.t = Hashtbl.create 16

let source_lines file =
  match Hashtbl.find_opt line_cache file with
  | Some l -> l
  | None ->
    let path =
      if Filename.is_relative file then Filename.concat !root_dir file
      else file
    in
    let lines =
      match
        if Sys.file_exists path && not (Sys.is_directory path) then (
          let ic = open_in_bin path in
          let n = in_channel_length ic in
          let text = really_input_string ic n in
          close_in ic;
          Some (Array.of_list (String.split_on_char '\n' text)))
        else None
      with
      | Some a -> a
      | None -> [||]
    in
    Hashtbl.replace line_cache file lines;
    lines

let suppressed_at file rule line =
  let lines = source_lines file in
  let mark = "analyze: allow " ^ rule in
  let has l =
    l >= 1
    && l <= Array.length lines
    && (let text = lines.(l - 1) in
        let tn = String.length text and mn = String.length mark in
        let rec scan i =
          i + mn <= tn && (String.sub text i mn = mark || scan (i + 1))
        in
        scan 0)
  in
  has line || has (line - 1)

let seen_diags : (string, unit) Hashtbl.t = Hashtbl.create 64

let report ~(loc : Location.t) rule msg =
  let pos = loc.Location.loc_start in
  let file = pos.Lexing.pos_fname in
  let line = pos.Lexing.pos_lnum in
  let col = pos.Lexing.pos_cnum - pos.Lexing.pos_bol in
  let key = Printf.sprintf "%s|%d|%d|%s" file line col rule in
  if not (Hashtbl.mem seen_diags key) then begin
    Hashtbl.replace seen_diags key ();
    if suppressed_at file rule line then incr suppressed
    else
      diags :=
        { d_file = file; d_line = line; d_col = col; d_rule = rule; d_msg = msg }
        :: !diags
  end

(* ---------- names and paths ----------------------------------------------- *)

(* "Core__Search" (the on-disk unit of a wrapped library module) and
   "Core.Search" (how source code and module aliases spell it) must
   compare equal, so every name is normalized to dot form. *)
let normalize name =
  let b = Buffer.create (String.length name) in
  let n = String.length name in
  let i = ref 0 in
  while !i < n do
    if !i + 1 < n && name.[!i] = '_' && name.[!i + 1] = '_' then begin
      Buffer.add_char b '.';
      i := !i + 2
    end
    else begin
      Buffer.add_char b name.[!i];
      incr i
    end
  done;
  Buffer.contents b

let last_two name =
  match List.rev (String.split_on_char '.' name) with
  | f :: m :: _ -> (m, f)
  | [ f ] -> ("", f)
  | [] -> ("", "")

(* Local module aliases (`module I = Search.Internal`) are resolved by
   the head ident's unique name, so a path through the alias compares
   equal to the target's own name. *)
let aliases : (string, string) Hashtbl.t = Hashtbl.create 16

let rec path_str p =
  match p with
  | Path.Pident id -> (
    match Hashtbl.find_opt aliases (Ident.unique_name id) with
    | Some target -> target
    | None -> Ident.name id)
  | Path.Pdot (p', s) -> path_str p' ^ "." ^ s
  | Path.Papply (a, _) -> path_str a
  | Path.Pextra_ty (p', _) -> path_str p'

let resolved_name p = normalize (path_str p)

(* ---------- attribute helpers --------------------------------------------- *)

let attr_names =
  List.map (fun (a : Parsetree.attribute) -> a.Parsetree.attr_name.Location.txt)

let has_attr name attrs = List.mem name (attr_names attrs)

let string_payload (a : Parsetree.attribute) =
  match a.Parsetree.attr_payload with
  | Parsetree.PStr
      [
        {
          Parsetree.pstr_desc =
            Parsetree.Pstr_eval
              ( {
                  Parsetree.pexp_desc =
                    Parsetree.Pexp_constant (Parsetree.Pconst_string (s, _, _));
                  _;
                },
                _ );
          _;
        };
      ] ->
    Some s
  | _ -> None

let guard_of_attrs attrs =
  List.fold_left
    (fun acc (a : Parsetree.attribute) ->
      match acc with
      | Some _ -> acc
      | None ->
        if String.equal a.Parsetree.attr_name.Location.txt "guarded_by" then
          string_payload a
        else None)
    None attrs

(* ---------- the model ----------------------------------------------------- *)

type cell_class =
  | Atomic_cell  (* Atomic.t: all access via Atomic ops, always safe *)
  | Dls_key      (* Multicore.Dls.key: domain-local by construction *)
  | Guarded of string  (* [@@guarded_by "lock"] *)
  | Plain        (* unannotated mutable container *)

type cell = {
  cl_name : string;  (* display name, e.g. Interning.names *)
  cl_class : cell_class;
  cl_loc : Location.t;
  mutable cl_reads : int;
  mutable cl_writes : int;
}

(* Toplevel cells, addressable by the defining binding's ident (same
   unit) or by normalized qualified name (cross-unit). *)
let cells_by_stamp : (string, cell) Hashtbl.t = Hashtbl.create 64
let cells_by_name : (string, cell) Hashtbl.t = Hashtbl.create 64
let all_cells : cell list ref = ref []

(* Guarded / mutable record fields declared in the scanned units, for
   the inventory listing (checks use the label_description attributes
   present at each use site, so they need no global table). *)
type field_cell = {
  fc_name : string;  (* Unit.type.field *)
  fc_guard : string option;
  fc_mutable : bool;
  fc_loc : Location.t;
}

let field_cells : field_cell list ref = ref []

type write_site = {
  w_cell : string;           (* display name *)
  w_guard : string option;   (* None = plain cell *)
  w_locks : string list;     (* lock names lexically held at the site *)
  w_loc : Location.t;
}

type node = {
  n_name : string;  (* normalized, e.g. Core.Search.register *)
  n_loc : Location.t;
  n_domain_safe : bool;
  n_coordinator_only : bool;
  mutable n_writes : write_site list;
  mutable n_calls : (string * string list) list;  (* callee, locks held *)
}

let nodes : (string, node) Hashtbl.t = Hashtbl.create 256

(* Worker-domain entry points: node names referenced inside an argument
   of Multicore.spawn, with the spawn site for diagnostics. *)
let worker_roots : (string * Location.t) list ref = ref []

(* ---------- per-unit state ------------------------------------------------ *)

let vals_by_stamp : (string, string) Hashtbl.t = Hashtbl.create 256
(* DLS-origin locals: unique ident name -> variable name *)
let dls_origin : (string, string) Hashtbl.t = Hashtbl.create 16

(* ---------- expression classification ------------------------------------- *)

let positional args =
  List.filter_map
    (function Asttypes.Nolabel, Some e -> Some e | _ -> None)
    args

(* Flatten an application to (innermost head, all positional args):
   `f @@ x` / `x |> f` pipe heads, and curried partial applications —
   which the typechecker nests, `with_lock l @@ fun () -> …` becoming
   `Texp_apply (Texp_apply (with_lock, [l]), [fun…])` — all normalize
   to the same shape. *)
let rec split_apply head args =
  let pos = positional args in
  match head.exp_desc with
  | Texp_apply (h', args') ->
    let h, p = split_apply h' args' in
    (h, p @ pos)
  | Texp_ident (p, _, _) -> (
    let _, f = last_two (resolved_name p) in
    let piped fn x =
      match fn.exp_desc with
      | Texp_apply (h', a') ->
        let h, p = split_apply h' a' in
        (h, p @ [ x ])
      | _ -> (fn, [ x ])
    in
    match (f, pos) with
    | "@@", [ fn; x ] -> piped fn x
    | "|>", [ x; fn ] -> piped fn x
    | _ -> (head, pos))
  | _ -> (head, pos)

let head_name (h : expression) =
  match h.exp_desc with
  | Texp_ident (p, _, _) -> Some (resolved_name p)
  | _ -> None

let hashtbl_mutators =
  [ "add"; "replace"; "remove"; "reset"; "clear"; "filter_map_inplace" ]

let buffer_mutators =
  [
    "add_string"; "add_char"; "add_bytes"; "add_substring"; "add_subbytes";
    "add_utf_8_uchar"; "add_channel"; "add_buffer"; "clear"; "reset";
    "truncate";
  ]

let queue_mutators = [ "add"; "push"; "pop"; "take"; "clear"; "transfer" ]

let is_table_module m =
  m = "Hashtbl" || m = "Tbl" || m = "Table"
  || (String.length m >= 3 && String.sub m (String.length m - 3) 3 = "Tbl")

(* Whether a call to [name] mutates one of its arguments, and which
   positional argument that is (blit-style copies mutate their third). *)
let mutator_kind name =
  let m, f = last_two name in
  if m = "Atomic" then None (* atomic ops are the safe class *)
  else if f = ":=" then Some 0
  else if (m = "" || m = "Stdlib") && (f = "incr" || f = "decr") then Some 0
  else if is_table_module m && List.mem f hashtbl_mutators then Some 0
  else if m = "Buffer" && List.mem f buffer_mutators then Some 0
  else if m = "Queue" && List.mem f queue_mutators then Some 0
  else if (m = "Array" || m = "Bytes") && (f = "blit" || f = "unsafe_blit")
  then Some 2
  else if (m = "Array" || m = "Bytes") && (f = "set" || f = "unsafe_set" || f = "fill")
  then Some 0
  else None

let is_with_lock name = snd (last_two name) = "with_lock"
let is_spawn name = last_two name = ("Multicore", "spawn")

let is_dls_read name =
  match last_two name with
  | "Dls", "get" | "Obs", "global" | "Trace", "global" -> true
  | _ -> false

(* The name of the lock protecting a critical section, from the first
   argument of with_lock: a record field (`s.lock` -> "lock") or a
   toplevel binding (`rev_lock`). *)
let lock_name (e : expression) =
  match e.exp_desc with
  | Texp_field (_, _, lbl) -> lbl.Types.lbl_name
  | Texp_ident (p, _, _) -> snd (last_two (resolved_name p))
  | _ -> "?"

(* The shared cell (if any) that an lvalue expression addresses: the
   innermost [@guarded_by] field on the access path, else the toplevel
   cell at the base of the path. *)
type target =
  | T_field of string * string  (* label, guard *)
  | T_cell of cell

let rec lvalue_target (e : expression) =
  match e.exp_desc with
  | Texp_ident (p, _, _) -> (
    match p with
    | Path.Pident id -> (
      match Hashtbl.find_opt cells_by_stamp (Ident.unique_name id) with
      | Some c -> Some (T_cell c)
      | None -> None)
    | _ -> (
      match Hashtbl.find_opt cells_by_name (resolved_name p) with
      | Some c -> Some (T_cell c)
      | None -> None))
  | Texp_field (e', _, lbl) -> (
    match guard_of_attrs lbl.Types.lbl_attributes with
    | Some g -> Some (T_field (lbl.Types.lbl_name, g))
    | None -> lvalue_target e')
  | Texp_apply (h, args) -> (
    (* peel `!r` and `a.(i)` down to the root *)
    match head_name h with
    | Some n -> (
      let _, f = last_two n in
      if f = "!" || f = "get" || f = "unsafe_get" then
        match positional args with e' :: _ -> lvalue_target e' | [] -> None
      else None)
    | None -> None)
  | _ -> None

(* ---------- per-unit pass A: collect bindings, aliases, cells, fields ----- *)

let container_class (ty : Types.type_expr) =
  match Types.get_desc ty with
  | Types.Tconstr (p, _, _) -> (
    match last_two (normalize (Path.name p)) with
    | "Atomic", "t" -> Some Atomic_cell
    | "Dls", "key" -> Some Dls_key
    | _, "ref" -> Some Plain
    | m, "t" when is_table_module m -> Some Plain
    | "Buffer", "t" | "Queue", "t" | "Stack", "t" -> Some Plain
    | _, "array" -> Some Plain
    | _ -> None)
  | _ -> None

let register_cell ~prefix ~name ~loc ~attrs ~ty =
  let guard = guard_of_attrs attrs in
  let cls =
    match (guard, container_class ty) with
    | Some g, _ -> Some (Guarded g)
    | None, Some c -> Some c
    | None, None -> None
  in
  match cls with
  | None -> None
  | Some cl_class ->
    let cell =
      {
        cl_name = prefix ^ "." ^ name;
        cl_class;
        cl_loc = loc;
        cl_reads = 0;
        cl_writes = 0;
      }
    in
    all_cells := cell :: !all_cells;
    Hashtbl.replace cells_by_name cell.cl_name cell;
    Some cell

(* `let x = e` binds via Tpat_var; `let x : t = e` via Tpat_alias over
   Tpat_any — both name a single value. *)
let binding_ident pat =
  match pat.pat_desc with
  | Tpat_var (id, _) -> Some id
  | Tpat_alias ({ pat_desc = Tpat_any; _ }, id, _) -> Some id
  | _ -> None

let rec collect_structure ~prefix str =
  List.iter (collect_item ~prefix) str.str_items

and collect_item ~prefix si =
  match si.str_desc with
  | Tstr_value (_, vbs) ->
    List.iter
      (fun vb ->
        match binding_ident vb.vb_pat with
        | Some id ->
          let name = Ident.name id in
          let qualified = prefix ^ "." ^ name in
          Hashtbl.replace vals_by_stamp (Ident.unique_name id) qualified;
          let attrs = vb.vb_attributes in
          (match
             register_cell ~prefix ~name ~loc:vb.vb_loc ~attrs
               ~ty:vb.vb_expr.exp_type
           with
          | Some cell ->
            Hashtbl.replace cells_by_stamp (Ident.unique_name id) cell
          | None -> ());
          if not (Hashtbl.mem nodes qualified) then
            Hashtbl.replace nodes qualified
              {
                n_name = qualified;
                n_loc = vb.vb_loc;
                n_domain_safe = has_attr "domain_safe" attrs;
                n_coordinator_only = has_attr "coordinator_only" attrs;
                n_writes = [];
                n_calls = [];
              }
        | None -> ())
      vbs
  | Tstr_module mb -> collect_module ~prefix mb
  | Tstr_recmodule mbs -> List.iter (collect_module ~prefix) mbs
  | Tstr_type (_, decls) ->
    List.iter
      (fun (d : type_declaration) ->
        match d.typ_kind with
        | Ttype_record labels ->
          List.iter
            (fun (l : label_declaration) ->
              let guard = guard_of_attrs l.ld_attributes in
              let is_mut = l.ld_mutable = Asttypes.Mutable in
              let is_container = container_class l.ld_type.ctyp_type <> None in
              if guard <> None || is_mut || is_container then
                field_cells :=
                  {
                    fc_name =
                      Printf.sprintf "%s.%s.%s" prefix
                        d.typ_name.Location.txt l.ld_name.Location.txt;
                    fc_guard = guard;
                    fc_mutable = is_mut;
                    fc_loc = l.ld_loc;
                  }
                  :: !field_cells)
            labels
        | _ -> ())
      decls
  | _ -> ()

and collect_module ~prefix mb =
  let name = match mb.mb_id with Some id -> Ident.name id | None -> "_" in
  let rec strip (me : module_expr) =
    match me.mod_desc with
    | Tmod_constraint (me', _, _, _) -> strip me'
    | d -> d
  in
  match strip mb.mb_expr with
  | Tmod_ident (p, _) -> (
    match mb.mb_id with
    | Some id ->
      Hashtbl.replace aliases (Ident.unique_name id) (resolved_name p)
    | None -> ())
  | Tmod_structure str -> collect_structure ~prefix:(prefix ^ "." ^ name) str
  | _ -> ()

(* ---------- per-unit pass B: analyze bodies ------------------------------- *)

let cur_node : node option ref = ref None
let cur_locks : string list ref = ref []

let note_call name =
  match !cur_node with
  | Some n -> n.n_calls <- (name, !cur_locks) :: n.n_calls
  | None -> ()

let note_write target loc =
  let site =
    match target with
    | T_field (label, guard) ->
      Some { w_cell = label; w_guard = Some guard; w_locks = !cur_locks; w_loc = loc }
    | T_cell c -> (
      c.cl_writes <- c.cl_writes + 1;
      match c.cl_class with
      | Atomic_cell | Dls_key -> None
      | Guarded g ->
        Some { w_cell = c.cl_name; w_guard = Some g; w_locks = !cur_locks; w_loc = loc }
      | Plain ->
        Some { w_cell = c.cl_name; w_guard = None; w_locks = !cur_locks; w_loc = loc })
  in
  match (site, !cur_node) with
  | Some w, Some n -> n.n_writes <- w :: n.n_writes
  | _ -> ()

(* Scan a spawn argument: every known function referenced inside is a
   worker-domain entry point, and a reference to a DLS-origin local
   bound *outside* the argument is a capture that crosses domains. *)
let scan_spawn_arg (arg : expression) spawn_loc =
  let bound : (string, unit) Hashtbl.t = Hashtbl.create 8 in
  let refs : (string * Location.t) list ref = ref [] in
  let it =
    {
      Tast_iterator.default_iterator with
      pat =
        (fun (type k) self (p : k general_pattern) ->
          (match p.pat_desc with
          | Tpat_var (id, _) -> Hashtbl.replace bound (Ident.unique_name id) ()
          | Tpat_alias (_, id, _) ->
            Hashtbl.replace bound (Ident.unique_name id) ()
          | _ -> ());
          Tast_iterator.default_iterator.pat self p);
      expr =
        (fun self e ->
          (match e.exp_desc with
          | Texp_ident (Path.Pident id, _, _) ->
            refs := (Ident.unique_name id, e.exp_loc) :: !refs
          | Texp_ident (p, _, _) -> (
            let name = resolved_name p in
            match Hashtbl.find_opt nodes name with
            | Some _ -> worker_roots := (name, spawn_loc) :: !worker_roots
            | None -> ())
          | _ -> ());
          Tast_iterator.default_iterator.expr self e);
    }
  in
  it.expr it arg;
  List.iter
    (fun (stamp, loc) ->
      (match Hashtbl.find_opt vals_by_stamp stamp with
      | Some name when Hashtbl.mem nodes name ->
        worker_roots := (name, spawn_loc) :: !worker_roots
      | _ -> ());
      match Hashtbl.find_opt dls_origin stamp with
      | Some var when not (Hashtbl.mem bound stamp) ->
        report ~loc "dls-capture"
          (Printf.sprintf
             "`%s` holds a domain-local (DLS) value but is captured by a \
              closure passed to Multicore.spawn; DLS state is per-domain — \
              re-read it (Obs.global (), Multicore.Dls.get) inside the \
              spawned domain instead"
             var)
      | _ -> ())
    !refs

let analyze_iterator =
  let expr (e : expression) =
    match e.exp_desc with
    | Texp_ident (Path.Pident id, _, _) ->
      (match Hashtbl.find_opt vals_by_stamp (Ident.unique_name id) with
      | Some name -> note_call name
      | None -> ());
      (match Hashtbl.find_opt cells_by_stamp (Ident.unique_name id) with
      | Some c -> c.cl_reads <- c.cl_reads + 1
      | None -> ())
    | Texp_ident (p, _, _) ->
      let name = resolved_name p in
      note_call name;
      (match Hashtbl.find_opt cells_by_name name with
      | Some c -> c.cl_reads <- c.cl_reads + 1
      | None -> ())
    | Texp_setfield (obj, _, lbl, _) -> (
      match guard_of_attrs lbl.Types.lbl_attributes with
      | Some g -> note_write (T_field (lbl.Types.lbl_name, g)) e.exp_loc
      | None -> (
        match lvalue_target obj with
        | Some t -> note_write t e.exp_loc
        | None -> ()))
    | Texp_apply (head, args) -> (
      let h, pos = split_apply head args in
      match head_name h with
      | None -> ()
      | Some name -> (
        if is_with_lock name then begin
          (* handled below in the recursion override *)
          ()
        end
        else if is_spawn name then
          List.iter (fun a -> scan_spawn_arg a e.exp_loc) pos
        else
          match mutator_kind name with
          | Some idx -> (
            match List.nth_opt pos idx with
            | Some target -> (
              match lvalue_target target with
              | Some t -> note_write t e.exp_loc
              | None -> ())
            | None -> ())
          | None -> ()))
    | _ -> ()
  in
  let rec expr_rec self (e : expression) =
    (* with_lock gets special recursion: the thunk (and any argument
       evaluated after the lock expression) is walked with the lock
       pushed, so writes and calls inside the critical section see it. *)
    let with_lock_parts () =
      match e.exp_desc with
      | Texp_apply (head, args) -> (
        let h, pos = split_apply head args in
        match head_name h with
        | Some name when is_with_lock name -> (
          match pos with
          | lock_arg :: rest when rest <> [] -> Some (name, lock_arg, rest)
          | _ -> None)
        | _ -> None)
      | _ -> None
    in
    match with_lock_parts () with
    | Some (name, lock_arg, rest) ->
      note_call name;
      expr_rec self lock_arg;
      let ln = lock_name lock_arg in
      let saved = !cur_locks in
      cur_locks := ln :: saved;
      List.iter (expr_rec self) rest;
      cur_locks := saved
    | None ->
      expr e;
      Tast_iterator.default_iterator.expr { self with Tast_iterator.expr = expr_rec } e
  in
  let value_binding self vb =
    (match (binding_ident vb.vb_pat, vb.vb_expr.exp_desc) with
    | Some id, Texp_apply (head, args) -> (
      let h, _ = split_apply head args in
      match head_name h with
      | Some name when is_dls_read name ->
        Hashtbl.replace dls_origin (Ident.unique_name id) (Ident.name id)
      | _ -> ())
    | _ -> ());
    Tast_iterator.default_iterator.value_binding self vb
  in
  {
    Tast_iterator.default_iterator with
    expr = expr_rec;
    value_binding;
  }

let rec analyze_structure ~prefix str =
  List.iter (analyze_item ~prefix) str.str_items

and analyze_item ~prefix si =
  match si.str_desc with
  | Tstr_value (_, vbs) ->
    List.iter
      (fun vb ->
        let node =
          match binding_ident vb.vb_pat with
          | Some id -> Hashtbl.find_opt nodes (prefix ^ "." ^ Ident.name id)
          | None ->
            (* side-effecting toplevel code: a synthetic, uncallable node *)
            let name =
              Printf.sprintf "%s.<init:%d>" prefix
                vb.vb_loc.Location.loc_start.Lexing.pos_lnum
            in
            let n =
              {
                n_name = name;
                n_loc = vb.vb_loc;
                n_domain_safe = false;
                n_coordinator_only = false;
                n_writes = [];
                n_calls = [];
              }
            in
            Hashtbl.replace nodes name n;
            Some n
        in
        cur_node := node;
        cur_locks := [];
        analyze_iterator.Tast_iterator.expr analyze_iterator vb.vb_expr;
        cur_node := None)
      vbs
  | Tstr_module mb -> analyze_module ~prefix mb
  | Tstr_recmodule mbs -> List.iter (analyze_module ~prefix) mbs
  | _ -> ()

and analyze_module ~prefix mb =
  let name = match mb.mb_id with Some id -> Ident.name id | None -> "_" in
  let rec strip (me : module_expr) =
    match me.mod_desc with
    | Tmod_constraint (me', _, _, _) -> strip me'
    | d -> d
  in
  match strip mb.mb_expr with
  | Tmod_structure str -> analyze_structure ~prefix:(prefix ^ "." ^ name) str
  | _ -> ()

(* ---------- unit driver --------------------------------------------------- *)

let scan_unit path =
  match Cmt_format.read_cmt path with
  | exception Sys_error m ->
    hard_errors := Printf.sprintf "%s: %s" path m :: !hard_errors
  | exception _ ->
    (* a cmt written by a different compiler version, or not a cmt *)
    hard_errors :=
      Printf.sprintf "%s: unreadable cmt (compiler version mismatch?)" path
      :: !hard_errors
  | cmt -> (
    match cmt.Cmt_format.cmt_annots with
    | Cmt_format.Implementation str ->
      incr units_checked;
      let prefix = normalize cmt.Cmt_format.cmt_modname in
      Hashtbl.reset vals_by_stamp;
      Hashtbl.reset dls_origin;
      collect_structure ~prefix str;
      analyze_structure ~prefix str
    | _ -> ())

(* ---------- whole-program checks ------------------------------------------ *)

module S = Set.Make (String)

(* Forward reachability over the reference graph from the worker roots. *)
let worker_reachable () =
  let reach : (string, string) Hashtbl.t = Hashtbl.create 64 in
  (* node -> predecessor on a path from a root (roots map to "") *)
  let queue = Queue.create () in
  List.iter
    (fun (root, _) ->
      if not (Hashtbl.mem reach root) then begin
        Hashtbl.replace reach root "";
        Queue.add root queue
      end)
    !worker_roots;
  while not (Queue.is_empty queue) do
    let name = Queue.pop queue in
    match Hashtbl.find_opt nodes name with
    | None -> ()
    | Some n ->
      List.iter
        (fun (callee, _) ->
          if Hashtbl.mem nodes callee && not (Hashtbl.mem reach callee) then begin
            Hashtbl.replace reach callee name;
            Queue.add callee queue
          end)
        n.n_calls
  done;
  reach

let chain_to reach name =
  let rec go acc n =
    match Hashtbl.find_opt reach n with
    | Some "" | None -> n :: acc
    | Some pred -> go (n :: acc) pred
  in
  String.concat " -> " (go [] name)

(* Bottom-up effect footprints: the unguarded writes each function may
   perform, with callee effects discharged at call sites holding the
   owning lock.  Plain-cell writes are never discharged by a lock. *)
let effect_footprints () =
  let effects : (string, write_site list) Hashtbl.t = Hashtbl.create 256 in
  let get n = Option.value ~default:[] (Hashtbl.find_opt effects n) in
  let key w =
    Printf.sprintf "%s|%d" w.w_cell w.w_loc.Location.loc_start.Lexing.pos_lnum
  in
  let changed = ref true in
  while !changed do
    changed := false;
    Hashtbl.iter
      (fun name node ->
        let local =
          List.filter
            (fun w ->
              match w.w_guard with
              | Some g -> not (List.mem g w.w_locks)
              | None -> true)
            node.n_writes
        in
        let from_calls =
          List.concat_map
            (fun (callee, locks) ->
              List.filter
                (fun w ->
                  match w.w_guard with
                  | Some g -> not (List.mem g locks)
                  | None -> true)
                (get callee))
            node.n_calls
        in
        let merged =
          List.sort_uniq
            (fun a b -> String.compare (key a) (key b))
            (local @ from_calls)
        in
        if List.length merged <> List.length (get name) then begin
          Hashtbl.replace effects name merged;
          changed := true
        end)
      nodes
  done;
  effects

(* Reachability to coordinator-only functions, for domain_safe checks. *)
let reaches_coordinator () =
  let reaches : (string, string) Hashtbl.t = Hashtbl.create 64 in
  (* node -> the coordinator-only function it reaches *)
  let changed = ref true in
  while !changed do
    changed := false;
    Hashtbl.iter
      (fun name node ->
        if not (Hashtbl.mem reaches name) then begin
          let hit =
            if node.n_coordinator_only then Some name
            else
              List.find_map
                (fun (callee, _) ->
                  if String.equal callee name then None
                  else
                    match Hashtbl.find_opt nodes callee with
                    | Some c when c.n_coordinator_only -> Some callee
                    | _ -> Hashtbl.find_opt reaches callee)
                node.n_calls
          in
          match hit with
          | Some target ->
            Hashtbl.replace reaches name target;
            changed := true
          | None -> ()
        end)
      nodes
  done;
  reaches

let run_checks () =
  let reach = worker_reachable () in
  let effects = effect_footprints () in
  let coord = reaches_coordinator () in
  Hashtbl.iter
    (fun name node ->
      (* unguarded-write: lexical lock discipline on guarded cells *)
      List.iter
        (fun w ->
          match w.w_guard with
          | Some g when not (List.mem g w.w_locks) ->
            report ~loc:w.w_loc "unguarded-write"
              (Printf.sprintf
                 "mutation of `%s` guarded by `%s` without holding it \
                  (locks held here: %s); wrap the critical section in \
                  with_lock via the Multicore shim"
                 w.w_cell g
                 (match w.w_locks with
                 | [] -> "none"
                 | ls -> String.concat ", " ls))
          | _ -> ())
        node.n_writes;
      (* racy-global-write: plain cells written on worker-reachable paths *)
      if Hashtbl.mem reach name then
        List.iter
          (fun w ->
            if w.w_guard = None then
              report ~loc:w.w_loc "racy-global-write"
                (Printf.sprintf
                   "write to shared module-level mutable `%s` in `%s`, which \
                    is reachable from a worker domain (%s); make the cell \
                    atomic, guard it with [@@guarded_by] + with_lock, or \
                    confine the write to the coordinator"
                   w.w_cell name (chain_to reach name)))
          node.n_writes;
      (* coordinator-escape *)
      if node.n_coordinator_only && Hashtbl.mem reach name then
        report ~loc:node.n_loc "coordinator-escape"
          (Printf.sprintf
             "`%s` is [@@coordinator_only] but reachable from a worker-domain \
              entry point: %s"
             name (chain_to reach name));
      (* domain-unsafe *)
      if node.n_domain_safe then begin
        (match Hashtbl.find_opt effects name with
        | Some (w :: _) ->
          report ~loc:node.n_loc "domain-unsafe"
            (Printf.sprintf
               "`%s` is declared [@@domain_safe] but its footprint contains \
                an unguarded write to `%s` (%s:%d)"
               name w.w_cell w.w_loc.Location.loc_start.Lexing.pos_fname
               w.w_loc.Location.loc_start.Lexing.pos_lnum)
        | _ -> ());
        match Hashtbl.find_opt coord name with
        | Some target ->
          report ~loc:node.n_loc "domain-unsafe"
            (Printf.sprintf
               "`%s` is declared [@@domain_safe] but can reach \
                [@@coordinator_only] `%s`"
               name target)
        | None -> ()
      end)
    nodes

(* ---------- inventory ----------------------------------------------------- *)

let class_name = function
  | Atomic_cell -> "atomic"
  | Dls_key -> "dls-key"
  | Guarded g -> "guarded-by " ^ g
  | Plain -> "plain"

let print_inventory () =
  let reach = worker_reachable () in
  let pos (loc : Location.t) =
    Printf.sprintf "%s:%d" loc.Location.loc_start.Lexing.pos_fname
      loc.Location.loc_start.Lexing.pos_lnum
  in
  let cells =
    List.sort (fun a b -> String.compare a.cl_name b.cl_name) !all_cells
  in
  Printf.printf "shared-state inventory: %d module-level cell(s), %d field(s)\n"
    (List.length cells)
    (List.length !field_cells);
  List.iter
    (fun c ->
      let writers =
        Hashtbl.fold
          (fun name node acc ->
            if
              List.exists (fun w -> String.equal w.w_cell c.cl_name) node.n_writes
              && Hashtbl.mem reach name
            then name :: acc
            else acc)
          nodes []
      in
      Printf.printf "  %-42s %-18s %s  (%d reads, %d writes%s)\n" c.cl_name
        (class_name c.cl_class) (pos c.cl_loc) c.cl_reads c.cl_writes
        (match writers with
        | [] -> ""
        | ws -> "; worker-reachable writers: " ^ String.concat ", " ws))
    cells;
  let fields =
    List.sort (fun a b -> String.compare a.fc_name b.fc_name) !field_cells
  in
  List.iter
    (fun f ->
      Printf.printf "  %-42s %-18s %s\n" f.fc_name
        (match f.fc_guard with
        | Some g -> "guarded-by " ^ g
        | None -> if f.fc_mutable then "mutable field" else "container field")
        (pos f.fc_loc))
    fields

(* ---------- output -------------------------------------------------------- *)

let print_json ordered =
  let item d =
    Printf.sprintf
      "    {\"file\": \"%s\", \"line\": %d, \"col\": %d, \"rule\": \"%s\", \
       \"message\": \"%s\"}"
      (Sarif.json_escape d.d_file) d.d_line d.d_col
      (Sarif.json_escape d.d_rule)
      (Sarif.json_escape d.d_msg)
  in
  Printf.printf
    "{\n  \"schema_version\": 1,\n  \"units_checked\": %d,\n  \
     \"suppressed\": %d,\n  \"violations\": [\n%s\n  ]\n}\n"
    !units_checked !suppressed
    (String.concat ",\n" (List.map item ordered))

let print_sarif ordered =
  print_string
    (Sarif.to_string ~tool_name:"rdfviews-analyze" ~tool_version:"1.0.0"
       ~rules
       ~results:
         (List.map
            (fun d ->
              {
                Sarif.rule_id = d.d_rule;
                message = d.d_msg;
                file = d.d_file;
                line = d.d_line;
                col = d.d_col;
              })
            ordered))

let print_human ~inventory ordered =
  if inventory then print_inventory ();
  List.iter
    (fun d ->
      Printf.printf "%s:%d:%d: [%s] %s\n" d.d_file d.d_line d.d_col d.d_rule
        d.d_msg)
    ordered;
  Printf.printf "%d unit(s) checked, %d violation(s), %d suppressed\n"
    !units_checked (List.length ordered) !suppressed

let list_rules () =
  List.iter (fun (id, s) -> Printf.printf "%-20s %s\n" id s) rules;
  print_endline
    "\nSuppress one site with a comment on the same line or the line above:\n\
    \  (* analyze: allow <rule-id> -- reason *)"

(* ---------- main ---------------------------------------------------------- *)

let rec walk path acc =
  if Sys.is_directory path then
    Array.fold_left
      (fun acc entry -> walk (Filename.concat path entry) acc)
      acc
      (let entries = Sys.readdir path in
       Array.sort String.compare entries;
       entries)
  else if Filename.check_suffix path ".cmt" then path :: acc
  else acc

let () =
  let json = ref false in
  let sarif = ref false in
  let inventory = ref false in
  let paths = ref [] in
  let rec parse_args = function
    | [] -> ()
    | "--json" :: rest ->
      json := true;
      parse_args rest
    | "--sarif" :: rest ->
      sarif := true;
      parse_args rest
    | "--inventory" :: rest ->
      inventory := true;
      parse_args rest
    | "--list-rules" :: _ ->
      list_rules ();
      exit 0
    | "--root" :: dir :: rest ->
      root_dir := dir;
      parse_args rest
    | ("--help" | "-h") :: _ ->
      print_endline usage;
      exit 0
    | arg :: _ when String.length arg > 1 && arg.[0] = '-' ->
      prerr_endline ("analyze: unknown option " ^ arg);
      prerr_endline usage;
      exit 2
    | path :: rest ->
      paths := path :: !paths;
      parse_args rest
  in
  parse_args (List.tl (Array.to_list Sys.argv));
  let paths =
    match List.rev !paths with [] -> [ "_build/default/lib" ] | ps -> ps
  in
  let cmts =
    List.concat_map
      (fun p ->
        if not (Sys.file_exists p) then begin
          prerr_endline ("analyze: no such path: " ^ p);
          exit 2
        end;
        List.rev (walk p []))
      paths
  in
  if cmts = [] then begin
    prerr_endline
      "analyze: no .cmt files found (run `dune build` first; cmt files live \
       under _build/default/**/.objs/byte/)";
    exit 2
  end;
  List.iter scan_unit cmts;
  List.iter prerr_endline !hard_errors;
  if !hard_errors <> [] then exit 2;
  run_checks ();
  let ordered =
    List.sort
      (fun a b ->
        let c = String.compare a.d_file b.d_file in
        if c <> 0 then c else Int.compare a.d_line b.d_line)
      !diags
  in
  if !json then print_json ordered
  else if !sarif then print_sarif ordered
  else print_human ~inventory:!inventory ordered;
  exit (if ordered = [] then 0 else 1)
