(* Seeded violation for tool/analyze: a [@@coordinator_only] function
   called from inside a spawn closure.  Expected: `coordinator-escape`
   at [register]. *)

module Multicore = struct
  let spawn f = f ()
  let join x = x
end

let registered = Atomic.make 0
let register () = Atomic.incr registered [@@coordinator_only]
let worker () = register ()
let run () = Multicore.join (Multicore.spawn (fun () -> worker ()))
