(* Seeded violation for tool/analyze: an unannotated module-level
   hashtable written on a path reachable from a spawn closure.
   Expected: `racy-global-write` at the write in [worker]. *)

module Multicore = struct
  (* name-shaped stub: the analyzer matches spawn by suffix *)
  let spawn f = f ()
end

let hits : (int, int) Hashtbl.t = Hashtbl.create 8
let worker n = Hashtbl.replace hits n n
let run () = Multicore.spawn (fun () -> worker 1)
