(* Clean-tree fixture for tool/analyze: guarded writes inside their
   critical sections, atomic counters, and a spawn whose closure only
   touches domain-safe functions.  Expected: exit 0, no diagnostics. *)

module Spin = struct
  type t = bool Atomic.t

  let create () = Atomic.make false
  let with_lock (_ : t) f = f ()
end

module Multicore = struct
  let spawn f = f ()
end

type cell = {
  lock : Spin.t;
  tbl : (int, int) Hashtbl.t [@guarded_by "lock"];
}

let c = { lock = Spin.create (); tbl = Hashtbl.create 8 }

let bump n = Spin.with_lock c.lock (fun () -> Hashtbl.replace c.tbl n n)
[@@domain_safe]

let total = Atomic.make 0
let tick () = Atomic.incr total [@@domain_safe]

let run () =
  Multicore.spawn (fun () ->
      bump 3;
      tick ())
