(* Seeded violation for tool/analyze: one write to a [@guarded_by]
   field outside its critical section.  Expected: exactly one
   `unguarded-write` at [bad]; [good] is discharged by with_lock. *)

module Spin = struct
  type t = bool Atomic.t

  let create () = Atomic.make false
  let with_lock (_ : t) f = f ()
end

type cell = {
  lock : Spin.t;
  tbl : (int, int) Hashtbl.t [@guarded_by "lock"];
}

let c = { lock = Spin.create (); tbl = Hashtbl.create 8 }
let good n = Spin.with_lock c.lock (fun () -> Hashtbl.replace c.tbl n n)
let bad n = Hashtbl.replace c.tbl n n
