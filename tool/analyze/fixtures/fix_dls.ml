(* Seeded violation for tool/analyze: a local bound to a DLS read,
   captured by a closure passed to spawn.  Expected: `dls-capture` at
   the reference to [sink] inside the spawn argument. *)

module Multicore = struct
  let spawn f = f ()

  module Dls = struct
    type 'a key = 'a ref

    let new_key f = ref (f ())
    let get k = !k
  end
end

let sink_key = Multicore.Dls.new_key (fun () -> 0)

let run () =
  let sink = Multicore.Dls.get sink_key in
  Multicore.spawn (fun () -> sink + 1)
