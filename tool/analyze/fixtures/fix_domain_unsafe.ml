(* Seeded violation for tool/analyze: a function declared
   [@@domain_safe] whose propagated footprint writes a plain shared
   cell (via its callee).  Expected: `domain-unsafe` at [accumulate]. *)

let total = ref 0.
let note x = total := !total +. x
let accumulate xs = List.iter note xs [@@domain_safe]
