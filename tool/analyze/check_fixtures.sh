#!/bin/bash
# Seeded-violation check for tool/analyze: each fixture under
# fixtures/ must make the analyzer exit 1 with its expected diagnostic
# id, and the clean fixture must exit 0.  Run from the directory
# holding analyze.exe and the built fixtures library (dune runs it in
# _build/default/tool/analyze via the runtest alias; the CI analyze
# job does the same by hand).
set -u
objs=fixtures/.afix.objs/byte
fail=0

expect() {
  name=$1
  rule=$2
  cmt="$objs/afix__$name.cmt"
  out=$(./analyze.exe "$cmt" 2>&1)
  code=$?
  if [ "$code" -ne 1 ]; then
    echo "FAIL $name: exit $code (want 1)"
    echo "$out"
    fail=1
  elif ! printf '%s\n' "$out" | grep -q "\[$rule\]"; then
    echo "FAIL $name: expected a [$rule] diagnostic"
    echo "$out"
    fail=1
  else
    echo "ok: $name -> $rule"
  fi
}

expect Fix_unguarded unguarded-write
expect Fix_racy racy-global-write
expect Fix_coordinator coordinator-escape
expect Fix_domain_unsafe domain-unsafe
expect Fix_dls dls-capture

out=$(./analyze.exe "$objs/afix__Fix_clean.cmt" 2>&1)
code=$?
if [ "$code" -ne 0 ]; then
  echo "FAIL Fix_clean: exit $code (want 0)"
  echo "$out"
  fail=1
else
  echo "ok: Fix_clean -> clean"
fi

exit $fail
