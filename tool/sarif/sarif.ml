(* Minimal SARIF 2.1.0 serializer shared by tool/lint and tool/analyze.

   Both static passes upload to the same GitHub code-scanning endpoint,
   so the envelope lives in exactly one place: a run is a tool driver
   (name + version + rule table) and a flat list of results, each
   pointing at one physical location.  Nothing repo-specific beyond
   that — the callers provide their own rule ids and messages. *)

type result = {
  rule_id : string;
  message : string;
  file : string;  (* repo-relative URI *)
  line : int;     (* 1-based *)
  col : int;      (* 0-based, as the compiler reports; emitted 1-based *)
}

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* GitHub requires a forward-slash relative URI. *)
let uri_of_file file =
  String.map (fun c -> if c = '\\' then '/' else c) file

let rule ~id ~summary =
  Printf.sprintf
    "          {\"id\": \"%s\", \"shortDescription\": {\"text\": \"%s\"}}"
    (json_escape id) (json_escape summary)

let result r =
  Printf.sprintf
    "      {\"ruleId\": \"%s\", \"level\": \"error\", \"message\": {\"text\": \
     \"%s\"}, \"locations\": [{\"physicalLocation\": {\"artifactLocation\": \
     {\"uri\": \"%s\"}, \"region\": {\"startLine\": %d, \"startColumn\": \
     %d}}}]}"
    (json_escape r.rule_id) (json_escape r.message)
    (json_escape (uri_of_file r.file))
    (max 1 r.line) (r.col + 1)

let to_string ~tool_name ~tool_version ~rules ~results =
  Printf.sprintf
    "{\n\
    \  \"$schema\": \
     \"https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json\",\n\
    \  \"version\": \"2.1.0\",\n\
    \  \"runs\": [{\n\
    \    \"tool\": {\n\
    \      \"driver\": {\n\
    \        \"name\": \"%s\",\n\
    \        \"version\": \"%s\",\n\
    \        \"rules\": [\n%s\n        ]\n\
    \      }\n\
    \    },\n\
    \    \"results\": [\n%s\n    ]\n\
    \  }]\n\
     }\n"
    (json_escape tool_name) (json_escape tool_version)
    (String.concat ",\n" (List.map (fun (id, s) -> rule ~id ~summary:s) rules))
    (String.concat ",\n" (List.map result results))
