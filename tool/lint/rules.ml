(* The lint rule table.  Every diagnostic the driver emits carries the id
   of one of these rules; a site is silenced by a comment containing
   "lint: allow <id>" on the offending line or the line above it.

   The checks are purely syntactic (an [Ast_iterator] over the
   parsetree), so the "applied to a domain type" rules work from the
   tables below: an expression is treated as domain-typed when it is
   built by a known domain constructor or a known domain-producing
   function.  That heuristic has false negatives (a domain value bound
   to a plain identifier is invisible), never false positives; the
   dedicated [equal]/[compare]/[hash] functions and the [Hashtbl.Make]
   tables introduced alongside this linter are the belt to this
   suspenders.  The shared-table rule closes the analogous alias hole
   for its fields by tracking file-local [let t = x.s_tbl]-style
   bindings; deeper dataflow (aliases through function returns or
   arguments) is the typedtree analyzer's job (tool/analyze). *)

type scope =
  | Everywhere  (** checked in every directory given to the driver *)
  | Lib_only    (** checked only under a [lib] directory *)

type rule = { id : string; summary : string; scope : scope }

let rules =
  [
    {
      id = "poly-compare";
      summary =
        "bare or Stdlib-qualified polymorphic `compare`; use the domain \
         module's dedicated compare (Rdf.Term.compare, String.compare, ...)";
      scope = Everywhere;
    };
    {
      id = "poly-equal";
      summary =
        "polymorphic =/<> applied to a domain value (Rdf.Term.t, \
         Query.Qterm.t, Query.Atom.t, Core.Rewriting.t, ...); use the \
         module's dedicated equal";
      scope = Everywhere;
    };
    {
      id = "poly-hash";
      summary =
        "Hashtbl.hash / Hashtbl.seeded_hash; use the domain module's \
         dedicated hash";
      scope = Everywhere;
    };
    {
      id = "hashtbl-domain-key";
      summary =
        "generic Hashtbl operation keyed by a domain value; use the \
         module's Hashtbl.Make table (e.g. Rdf.Term.Table)";
      scope = Everywhere;
    };
    {
      id = "obj-magic";
      summary = "Obj.magic defeats the type system and is banned";
      scope = Everywhere;
    };
    {
      id = "phys-equal";
      summary =
        "physical equality (==/!=) or List.memq in a library; domain \
         values are rebuilt by transitions and reloads, so physical \
         identity silently diverges from structural identity — compare \
         by name or with the module's equal";
      scope = Lib_only;
    };
    {
      id = "catch-all";
      summary =
        "catch-all exception handler (try ... with _ -> / with e ->) in a \
         library; match the specific exceptions intended";
      scope = Lib_only;
    };
    {
      id = "unguarded-shared-table";
      summary =
        "hashtable mutation of a lock-protected shared table field \
         (s_tbl, b_tbl, c_tbl) — directly or through a let-bound alias \
         of the field — outside its owning module; all writes must go \
         through the owner's locked entry points";
      scope = Lib_only;
    };
    {
      id = "retained-exec-row";
      summary =
        "callback passed to Plan.exec / Plan.exec_tuple stores the emitted \
         row array without copying; the executor reuses that buffer across \
         emissions, so the stored rows all mutate to the last one — store \
         [Array.copy row] instead";
      scope = Everywhere;
    };
    {
      id = "missing-mli";
      summary = "library module without an .mli interface";
      scope = Lib_only;
    };
    {
      id = "stdout-in-lib";
      summary =
        "direct printing to stdout from a library (print_*, Printf.printf, \
         Format.printf); return strings or go through Obs";
      scope = Lib_only;
    };
  ]

let find id = List.find_opt (fun r -> String.equal r.id id) rules

(* ---------- domain tables ------------------------------------------------ *)

(* Variant constructors of the dictionary-encoded domain types:
   Rdf.Term.t, Query.Qterm.t, Core.Rewriting.t / .cond, Rdf.Schema
   statements.  An =/<> operand built from one of these is a domain
   comparison. *)
let domain_constructors =
  [
    "Uri"; "Blank"; "Literal";            (* Rdf.Term.t *)
    "Var"; "Cst";                          (* Query.Qterm.t *)
    "Scan"; "Select"; "Project"; "Join"; "Rename"; "Union";  (* Rewriting.t *)
    "Eq_cst"; "Eq_col";                    (* Rewriting.cond *)
    "Subclass"; "Subproperty"; "Domain"; "Range";  (* Rdf.Schema *)
  ]

(* (module, function) pairs whose application yields a domain value; the
   module component is matched against the last module of the access
   path, so both [Term.uri] and [Rdf.Term.uri] hit. *)
let domain_producers =
  [
    ("Term", "uri"); ("Term", "blank"); ("Term", "literal");
    ("Term", "of_string");
    ("Qterm", "var"); ("Qterm", "cst"); ("Qterm", "uri");
    ("Atom", "make"); ("Triple", "make");
    ("View", "make");
    ("Cq", "make"); ("Cq", "freshen"); ("Cq", "minimize"); ("Cq", "rename");
    (* a listified row is a domain value: keying a generic Hashtbl by
       [Array.to_list row] means polymorphic hashing of the row — use
       Query.Rowset (or its Tbl) instead *)
    ("Array", "to_list");
  ]

(* Qualified domain constants (values, not functions). *)
let domain_values = [ ("Vocabulary", "rdf_type") ]

(* Generic-Hashtbl operations whose second positional argument is the
   key. *)
let hashtbl_key_ops =
  [ "add"; "replace"; "find"; "find_opt"; "find_all"; "mem"; "remove" ]

(* Shared mutable table fields and the one source file whose locked
   entry points are allowed to touch them.  The intern shards and the
   parallel-search dedup shards are accessed concurrently from several
   domains; a raw write anywhere else bypasses the shard spinlock and is
   a data race even when it happens to survive testing. *)
let shared_table_fields =
  [
    ("s_tbl", "interning.ml");   (* Interning's per-shard string table *)
    ("b_tbl", "shard_tbl.ml");   (* Shard_tbl's per-shard rank table *)
    ("c_tbl", "transition.ml");  (* Transition's guarded action cache *)
  ]

(* Operations that mutate a hashtable (generic Hashtbl or a Hashtbl.Make
   table such as State.Tbl).  Reads race too, but every read in the
   owners is already behind the same lock; the mutators are where an
   escape does silent structural damage. *)
let hashtbl_mutators =
  [ "add"; "replace"; "remove"; "reset"; "clear"; "filter_map_inplace" ]

(* Row-streaming entry points of the compiled-plan executor: their
   callback receives a binding frame the executor reuses for the next
   emission, so the callback owns the array only for the duration of
   the call. *)
let row_callback_entries = [ ("Plan", "exec"); ("Plan", "exec_tuple") ]

(* (module, function) applications that retain a positional argument
   beyond the call: passing the raw emitted row to one of these inside
   the callback stores the executor's reused buffer.  Cons cells,
   [:=], and record-field assignment are matched structurally by the
   linter; this table covers the container entry points. *)
let row_retaining_sinks =
  [
    ("Hashtbl", "add"); ("Hashtbl", "replace");
    ("Tbl", "add"); ("Tbl", "replace");
    ("Queue", "add"); ("Queue", "push");
    ("Stack", "push");
    ("Array", "set");
  ]

(* stdout printers banned in libraries: unqualified Stdlib channel
   printers and the printf family bound to stdout. *)
let stdout_idents =
  [
    "print_string"; "print_endline"; "print_newline"; "print_char";
    "print_bytes"; "print_int"; "print_float";
  ]

let stdout_qualified =
  [
    ("Printf", "printf");
    ("Format", "printf");
    ("Format", "print_string");
    ("Format", "print_newline");
    ("Format", "print_flush");
  ]
