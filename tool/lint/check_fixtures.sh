#!/bin/bash
# Seeded-violation check for the linter: fixtures/fix_retained_row.ml
# must trip retained-exec-row at every storing site, and the copying
# counterpart must lint clean.  Run from the directory holding
# lint.exe (dune runs it in _build/default/tool/lint via runtest).
set -u
fail=0

out=$(./lint.exe fixtures/fix_retained_row.ml 2>&1)
code=$?
hits=$(printf '%s\n' "$out" | grep -c "\[retained-exec-row\]")
if [ "$code" -ne 1 ]; then
  echo "FAIL fix_retained_row: exit $code (want 1)"
  echo "$out"
  fail=1
elif [ "$hits" -ne 5 ]; then
  echo "FAIL fix_retained_row: $hits retained-exec-row diagnostics (want 5)"
  echo "$out"
  fail=1
else
  echo "ok: fix_retained_row -> 5x retained-exec-row"
fi

out=$(./lint.exe fixtures/fix_copied_row.ml 2>&1)
code=$?
if [ "$code" -ne 0 ]; then
  echo "FAIL fix_copied_row: exit $code (want 0)"
  echo "$out"
  fail=1
else
  echo "ok: fix_copied_row -> clean"
fi

exit $fail
