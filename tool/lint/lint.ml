(* Repo-specific source linter.

   Usage: lint.exe [--json] [--list-rules] [PATH ...]

   Parses every .ml file under the given paths (default: lib bin bench)
   with the host compiler's parser and walks the parsetree with an
   [Ast_iterator], enforcing the rules in [Rules.rules].  Rules scoped
   [Lib_only] fire only for files under a lib/ directory.

   Suppression: a comment containing "lint: allow <rule-id>" on the
   offending line, or on the line directly above it, silences that one
   diagnostic.

   Exit codes:
     0  no violations
     1  at least one violation
     2  usage error, unreadable path, or unparseable source file *)

let usage =
  "lint.exe [--json|--sarif] [--list-rules] [PATH ...]\n\
   Lints OCaml sources against the repo rule table (see --list-rules).\n\
   Exit codes: 0 clean, 1 violations found, 2 usage/parse error."

(* ---------- diagnostics -------------------------------------------------- *)

type violation = {
  file : string;
  line : int;
  col : int;
  rule : string;
  message : string;
}

let violations : violation list ref = ref []
let suppressed = ref 0
let files_checked = ref 0
let hard_errors = ref []

(* Source lines of the file under analysis, for suppression comments. *)
let current_lines : string array ref = ref [||]

let suppressed_at rule_id line =
  let mark = "lint: allow " ^ rule_id in
  let has l =
    l >= 1 && l <= Array.length !current_lines
    && (let text = !current_lines.(l - 1) in
        let tn = String.length text and mn = String.length mark in
        let rec scan i =
          i + mn <= tn && (String.sub text i mn = mark || scan (i + 1))
        in
        scan 0)
  in
  has line || has (line - 1)

let report ~file ~(loc : Location.t) rule_id message =
  let pos = loc.Location.loc_start in
  let line = pos.Lexing.pos_lnum in
  let col = pos.Lexing.pos_cnum - pos.Lexing.pos_bol in
  if suppressed_at rule_id line then incr suppressed
  else violations := { file; line; col; rule = rule_id; message } :: !violations

(* ---------- longident helpers ------------------------------------------- *)

let flatten lid = try Longident.flatten lid with _ -> []

(* Last (module, name) pair of an access path: [Rdf.Term.uri] ->
   ("Term", "uri"); [compare] -> ("", "compare"). *)
let tail_pair lid =
  match List.rev (flatten lid) with
  | name :: md :: _ -> (md, name)
  | [ name ] -> ("", name)
  | [] -> ("", "")

let pair_in table lid = List.mem (tail_pair lid) table

(* ---------- domain-expression heuristic ---------------------------------- *)

let rec is_domain_expr (e : Parsetree.expression) =
  match e.Parsetree.pexp_desc with
  | Parsetree.Pexp_construct ({ txt; _ }, _) ->
    let _, name = tail_pair txt in
    List.mem name Rules.domain_constructors
  | Parsetree.Pexp_apply ({ pexp_desc = Parsetree.Pexp_ident { txt; _ }; _ }, _)
    ->
    pair_in Rules.domain_producers txt
  | Parsetree.Pexp_ident { txt; _ } -> pair_in Rules.domain_values txt
  | Parsetree.Pexp_constraint (inner, _) -> is_domain_expr inner
  | _ -> false

let describe_domain_expr (e : Parsetree.expression) =
  match e.Parsetree.pexp_desc with
  | Parsetree.Pexp_construct ({ txt; _ }, _) ->
    String.concat "." (flatten txt)
  | Parsetree.Pexp_apply ({ pexp_desc = Parsetree.Pexp_ident { txt; _ }; _ }, _)
  | Parsetree.Pexp_ident { txt; _ } ->
    String.concat "." (flatten txt)
  | _ -> "expression"

(* ---------- per-expression checks ---------------------------------------- *)

(* Names let-bound anywhere in the file; a bare [compare]/[hash] that a
   module defines itself (Rdf.Term.compare inside term.ml) is not the
   polymorphic one. *)
let locally_bound : (string, unit) Hashtbl.t = Hashtbl.create 16

(* Let-bound aliases of the shared table fields: [let t = shard.s_tbl]
   maps "t" -> "s_tbl", so a mutator applied to the bare alias is
   caught too (the rule's original false-negative class). *)
let table_aliases : (string, string) Hashtbl.t = Hashtbl.create 16

let collect_bound structure =
  Hashtbl.reset locally_bound;
  Hashtbl.reset table_aliases;
  let it =
    {
      Ast_iterator.default_iterator with
      pat =
        (fun self p ->
          (match p.Parsetree.ppat_desc with
          | Parsetree.Ppat_var { txt; _ } -> Hashtbl.replace locally_bound txt ()
          | _ -> ());
          Ast_iterator.default_iterator.pat self p);
      value_binding =
        (fun self vb ->
          (match
             (vb.Parsetree.pvb_pat.Parsetree.ppat_desc,
              vb.Parsetree.pvb_expr.Parsetree.pexp_desc)
           with
          | ( Parsetree.Ppat_var { txt = alias; _ },
              Parsetree.Pexp_field (_, { txt = field_lid; _ }) ) ->
            let _, field = tail_pair field_lid in
            if List.mem_assoc field Rules.shared_table_fields then
              Hashtbl.replace table_aliases alias field
          | _ -> ());
          Ast_iterator.default_iterator.value_binding self vb);
    }
  in
  it.structure it structure

let check_ident ~file ~is_lib txt loc =
  match tail_pair txt with
  | "", "compare" when not (Hashtbl.mem locally_bound "compare") ->
    report ~file ~loc "poly-compare"
      "bare `compare` is the polymorphic comparison; use a dedicated compare"
  | ("Stdlib" | "Pervasives"), ("compare" | "=" | "<>") ->
    report ~file ~loc "poly-compare"
      "Stdlib polymorphic comparison; use a dedicated compare/equal"
  | "Hashtbl", ("hash" | "seeded_hash") ->
    report ~file ~loc "poly-hash"
      "polymorphic Hashtbl.hash; use the domain module's hash"
  | "Obj", "magic" -> report ~file ~loc "obj-magic" "Obj.magic is banned"
  | "", name when is_lib && List.mem name Rules.stdout_idents ->
    report ~file ~loc "stdout-in-lib"
      (Printf.sprintf "`%s` writes to stdout from a library" name)
  | pair when is_lib && List.mem pair Rules.stdout_qualified ->
    report ~file ~loc "stdout-in-lib"
      (Printf.sprintf "`%s` writes to stdout from a library"
         (String.concat "." (flatten txt)))
  | _ -> ()

let positional_args args =
  List.filter_map
    (function Asttypes.Nolabel, e -> Some e | _ -> None)
    args

let check_apply ~file ~is_lib fn args loc =
  match fn.Parsetree.pexp_desc with
  | Parsetree.Pexp_ident { txt = Longident.Lident (("==" | "!=") as op); _ }
    when is_lib ->
    report ~file ~loc "phys-equal"
      (Printf.sprintf
         "physical %s compares object identity, which transitions and \
          reloads do not preserve; compare by name or dedicated equal"
         op)
  | Parsetree.Pexp_ident { txt; _ }
    when is_lib && tail_pair txt = ("List", "memq") ->
    report ~file ~loc "phys-equal"
      "List.memq compares by physical identity, which transitions and \
       reloads do not preserve; use a name-based List.exists"
  | Parsetree.Pexp_ident { txt = Longident.Lident (("=" | "<>") as op); _ } -> (
    match positional_args args with
    | a :: b :: _ ->
      let offender =
        if is_domain_expr a then Some a
        else if is_domain_expr b then Some b
        else None
      in
      Option.iter
        (fun e ->
          report ~file ~loc "poly-equal"
            (Printf.sprintf
               "polymorphic %s applied to domain value %s; use the module's \
                equal"
               op (describe_domain_expr e)))
        offender
    | _ -> ())
  | Parsetree.Pexp_ident { txt; _ }
    when (match tail_pair txt with
         | "Hashtbl", op -> List.mem op Rules.hashtbl_key_ops
         | _ -> false) -> (
    match positional_args args with
    | _table :: key :: _ when is_domain_expr key ->
      report ~file ~loc "hashtbl-domain-key"
        (Printf.sprintf
           "generic Hashtbl keyed by domain value %s; use the module's \
            Hashtbl.Make table"
           (describe_domain_expr key))
    | _ -> ())
  | _ -> ()

(* unguarded-shared-table: a hashtable mutator applied to one of the
   lock-protected shared table fields ([Rules.shared_table_fields]) —
   spelled as the field access itself or as a file-local let-bound
   alias of it ([table_aliases]) — outside the single file whose locked
   entry points own that field.  Matches both generic
   [Hashtbl.add t.s_tbl ...] and functorial [State.Tbl.replace t.b_tbl
   ...] spellings; runs independently of [check_apply] so the
   domain-key check on the same call still fires. *)
let check_shared_table ~file ~is_lib fn args loc =
  if is_lib then
    match fn.Parsetree.pexp_desc with
    | Parsetree.Pexp_ident { txt; _ }
      when (match tail_pair txt with
           | ("Hashtbl" | "Tbl"), op -> List.mem op Rules.hashtbl_mutators
           | _ -> false) -> (
      let target_field (e : Parsetree.expression) =
        match e.Parsetree.pexp_desc with
        | Parsetree.Pexp_field (_, { txt = field_lid; _ }) ->
          let _, field = tail_pair field_lid in
          if List.mem_assoc field Rules.shared_table_fields then
            Some (field, "field `" ^ field ^ "`")
          else None
        | Parsetree.Pexp_ident { txt = Longident.Lident alias; _ } -> (
          match Hashtbl.find_opt table_aliases alias with
          | Some field ->
            Some (field, Printf.sprintf "`%s` (alias of field `%s`)" alias field)
          | None -> None)
        | _ -> None
      in
      match positional_args args with
      | target :: _ -> (
        match target_field target with
        | Some (field, shown) -> (
          match List.assoc_opt field Rules.shared_table_fields with
          | Some owner when not (String.equal (Filename.basename file) owner)
            ->
            report ~file ~loc "unguarded-shared-table"
              (Printf.sprintf
                 "mutation of shared table %s outside %s bypasses its shard \
                  lock; go through the owning module's API"
                 shown owner)
          | _ -> ())
        | None -> ())
      | _ -> ())
    | _ -> ()

(* retained-exec-row: a callback passed to one of the row-streaming
   executor entry points ([Rules.row_callback_entries]) whose body
   stores the emitted row array itself — consed onto a list, assigned
   through [:=] or a record field, or handed to a retaining container
   operation ([Rules.row_retaining_sinks]) — instead of an
   [Array.copy].  The executor reuses the frame across emissions, so
   every retained reference silently becomes the last row.  Purely
   syntactic: only the raw callback parameter is tracked, so an alias
   ([let r = row in ...]) escapes the net; the QCheck differential
   suite is the backstop for those. *)
let rec is_raw_ident name (e : Parsetree.expression) =
  match e.Parsetree.pexp_desc with
  | Parsetree.Pexp_ident { txt = Longident.Lident n; _ } -> String.equal n name
  | Parsetree.Pexp_constraint (inner, _) -> is_raw_ident name inner
  | _ -> false

let scan_row_retention ~file row body =
  let fire loc what =
    report ~file ~loc "retained-exec-row"
      (Printf.sprintf
         "%s stores the emitted row `%s`, a buffer the executor reuses; \
          store Array.copy %s instead"
         what row row)
  in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self e ->
          (match e.Parsetree.pexp_desc with
          | Parsetree.Pexp_construct
              ( { txt = Longident.Lident "::"; _ },
                Some { pexp_desc = Parsetree.Pexp_tuple [ a; b ]; _ } )
            when is_raw_ident row a || is_raw_ident row b ->
            fire e.Parsetree.pexp_loc "consing onto a list"
          | Parsetree.Pexp_setfield (_, _, v) when is_raw_ident row v ->
            fire e.Parsetree.pexp_loc "record-field assignment"
          | Parsetree.Pexp_apply
              ( { pexp_desc = Parsetree.Pexp_ident { txt = Longident.Lident ":="; _ }; _ },
                args )
            when (match positional_args args with
                 | _ :: v :: _ -> is_raw_ident row v
                 | _ -> false) ->
            fire e.Parsetree.pexp_loc "reference assignment"
          | Parsetree.Pexp_apply
              ({ pexp_desc = Parsetree.Pexp_ident { txt; _ }; _ }, args)
            when pair_in Rules.row_retaining_sinks txt
                 && List.exists (is_raw_ident row) (positional_args args) ->
            fire e.Parsetree.pexp_loc
              ("`" ^ String.concat "." (flatten txt) ^ "`")
          | _ -> ());
          Ast_iterator.default_iterator.expr self e);
    }
  in
  it.expr it body

let check_retained_row ~file fn args _loc =
  match fn.Parsetree.pexp_desc with
  | Parsetree.Pexp_ident { txt; _ } when pair_in Rules.row_callback_entries txt
    -> (
    (* the emit callback is the last positional argument *)
    match List.rev (positional_args args) with
    | {
        Parsetree.pexp_desc =
          Parsetree.Pexp_fun
            ( _,
              _,
              { Parsetree.ppat_desc = Parsetree.Ppat_var { txt = row; _ }; _ },
              body );
        _;
      }
      :: _ ->
      scan_row_retention ~file row body
    | _ -> ())
  | _ -> ()

let rec catch_all_pattern (p : Parsetree.pattern) =
  match p.Parsetree.ppat_desc with
  | Parsetree.Ppat_any | Parsetree.Ppat_var _ -> true
  | Parsetree.Ppat_alias (inner, _) -> catch_all_pattern inner
  | Parsetree.Ppat_or (a, b) -> catch_all_pattern a || catch_all_pattern b
  | _ -> false

let check_try ~file cases =
  List.iter
    (fun (c : Parsetree.case) ->
      if catch_all_pattern c.Parsetree.pc_lhs then
        report ~file ~loc:c.Parsetree.pc_lhs.Parsetree.ppat_loc "catch-all"
          "catch-all exception handler; match the specific exceptions")
    cases

(* ---------- file walk ----------------------------------------------------- *)

let lint_structure ~file ~is_lib structure =
  collect_bound structure;
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self e ->
          (match e.Parsetree.pexp_desc with
          | Parsetree.Pexp_ident { txt; _ } ->
            check_ident ~file ~is_lib txt e.Parsetree.pexp_loc
          | Parsetree.Pexp_apply (fn, args) ->
            check_apply ~file ~is_lib fn args e.Parsetree.pexp_loc;
            check_shared_table ~file ~is_lib fn args e.Parsetree.pexp_loc;
            check_retained_row ~file fn args e.Parsetree.pexp_loc
          | Parsetree.Pexp_try (_, cases) when is_lib -> check_try ~file cases
          | _ -> ());
          Ast_iterator.default_iterator.expr self e);
    }
  in
  it.structure it structure

let read_lines path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let text = really_input_string ic n in
  close_in ic;
  (text, Array.of_list (String.split_on_char '\n' text))

let is_lib_path path =
  let parts = String.split_on_char '/' path in
  List.mem "lib" parts

let lint_file path =
  incr files_checked;
  let text, lines = read_lines path in
  current_lines := lines;
  let lexbuf = Lexing.from_string text in
  Location.init lexbuf path;
  match Parse.implementation lexbuf with
  | structure -> lint_structure ~file:path ~is_lib:(is_lib_path path) structure
  | exception exn ->
    let detail =
      match Location.error_of_exn exn with
      | Some (`Ok _) | Some `Already_displayed -> "syntax error"
      | None -> Printexc.to_string exn
    in
    hard_errors := Printf.sprintf "%s: unparseable (%s)" path detail :: !hard_errors

let rec walk path =
  if Sys.is_directory path then
    Sys.readdir path |> Array.to_list |> List.sort String.compare
    |> List.iter (fun entry ->
           if
             String.length entry > 0
             && entry.[0] <> '.'
             && entry.[0] <> '_'
           then walk (Filename.concat path entry))
  else if Filename.check_suffix path ".ml" then begin
    lint_file path;
    (* missing-mli: library modules must ship an interface *)
    if is_lib_path path && not (Sys.file_exists (path ^ "i")) then
      report ~file:path
        ~loc:
          Location.
            {
              loc_start = { Lexing.dummy_pos with pos_lnum = 1; pos_cnum = 0; pos_bol = 0 };
              loc_end = { Lexing.dummy_pos with pos_lnum = 1; pos_cnum = 0; pos_bol = 0 };
              loc_ghost = false;
            }
        "missing-mli"
        (Printf.sprintf "module %s has no .mli interface"
           (Filename.remove_extension (Filename.basename path)))
  end

(* ---------- output -------------------------------------------------------- *)

let json_escape = Sarif.json_escape

let print_json ordered =
  let item v =
    Printf.sprintf
      "    {\"file\": \"%s\", \"line\": %d, \"col\": %d, \"rule\": \"%s\", \
       \"message\": \"%s\"}"
      (json_escape v.file) v.line v.col (json_escape v.rule)
      (json_escape v.message)
  in
  Printf.printf
    "{\n  \"schema_version\": 1,\n  \"files_checked\": %d,\n  \
     \"suppressed\": %d,\n  \"violations\": [\n%s\n  ]\n}\n"
    !files_checked !suppressed
    (String.concat ",\n" (List.map item ordered))

let print_sarif ordered =
  print_string
    (Sarif.to_string ~tool_name:"rdfviews-lint" ~tool_version:"1.0.0"
       ~rules:(List.map (fun r -> (r.Rules.id, r.Rules.summary)) Rules.rules)
       ~results:
         (List.map
            (fun v ->
              {
                Sarif.rule_id = v.rule;
                message = v.message;
                file = v.file;
                line = v.line;
                col = v.col;
              })
            ordered))

let print_human ordered =
  List.iter
    (fun v ->
      Printf.printf "%s:%d:%d: [%s] %s\n" v.file v.line v.col v.rule v.message)
    ordered;
  Printf.printf "%d file(s) checked, %d violation(s), %d suppressed\n"
    !files_checked (List.length ordered) !suppressed

let list_rules () =
  List.iter
    (fun r ->
      Printf.printf "%-20s %s  %s\n" r.Rules.id
        (match r.Rules.scope with
        | Rules.Everywhere -> "[all] "
        | Rules.Lib_only -> "[lib] ")
        r.Rules.summary)
    Rules.rules;
  print_endline
    "\nSuppress one site with a comment on the same line or the line above:\n\
    \  (* lint: allow <rule-id> -- reason *)"

(* ---------- main ---------------------------------------------------------- *)

let () =
  let json = ref false in
  let sarif = ref false in
  let paths = ref [] in
  let args = List.tl (Array.to_list Sys.argv) in
  let rec parse_args = function
    | [] -> ()
    | "--json" :: rest ->
      json := true;
      parse_args rest
    | "--sarif" :: rest ->
      sarif := true;
      parse_args rest
    | "--list-rules" :: _ ->
      list_rules ();
      exit 0
    | ("--help" | "-h") :: _ ->
      print_endline usage;
      exit 0
    | arg :: _ when String.length arg > 1 && arg.[0] = '-' ->
      prerr_endline ("lint: unknown option " ^ arg);
      prerr_endline usage;
      exit 2
    | path :: rest ->
      paths := path :: !paths;
      parse_args rest
  in
  parse_args args;
  let paths =
    match List.rev !paths with [] -> [ "lib"; "bin"; "bench" ] | ps -> ps
  in
  List.iter
    (fun p ->
      if Sys.file_exists p then walk p
      else begin
        prerr_endline ("lint: no such path: " ^ p);
        exit 2
      end)
    paths;
  List.iter prerr_endline !hard_errors;
  if !hard_errors <> [] then exit 2;
  let ordered =
    List.sort
      (fun a b ->
        let c = String.compare a.file b.file in
        if c <> 0 then c else Int.compare a.line b.line)
      !violations
  in
  if !json then print_json ordered
  else if !sarif then print_sarif ordered
  else print_human ordered;
  exit (if ordered = [] then 0 else 1)
