(* Clean counterpart to fix_retained_row.ml: the same callback shapes,
   but every stored value is an [Array.copy] of the emitted row (or a
   scalar read out of it), which is the contract the rule enforces.
   Must lint clean. *)

let consed plan store =
  let acc = ref [] in
  Query.Plan.exec plan store (fun row -> acc := Array.copy row :: !acc);
  !acc

type holder = { mutable last : int array }

let field_set plan store h =
  Query.Plan.exec_tuple plan store (fun row -> h.last <- Array.copy row)

let scalar_read plan store =
  let total = ref 0 in
  Query.Plan.exec plan store (fun row -> total := !total + row.(0));
  !total

let hashed plan store tbl =
  Query.Plan.exec plan store (fun row ->
      Hashtbl.add tbl row.(0) (Array.copy row))
