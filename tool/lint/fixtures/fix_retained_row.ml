(* Seeded-violation fixture for the retained-exec-row lint rule: every
   storing form below keeps the raw emitted row, which Plan.exec
   reuses for the next binding.  Never compiled — the linter only
   parses it; check_fixtures.sh asserts each site is flagged. *)

let consed plan store =
  let acc = ref [] in
  Query.Plan.exec plan store (fun row -> acc := row :: !acc);
  !acc

type holder = { mutable last : int array }

let field_set plan store h =
  Query.Plan.exec_tuple plan store (fun row -> h.last <- row)

let ref_set plan store =
  let last = ref [||] in
  Query.Plan.exec plan store (fun row -> last := row);
  !last

let hashed plan store tbl =
  Query.Plan.exec plan store (fun row -> Hashtbl.add tbl row.(0) row)

let arrayed plan store out =
  let i = ref 0 in
  Query.Plan.exec_tuple plan store (fun row ->
      Array.set out !i row;
      incr i)
