(* The three-tier / offline deployment the paper's introduction
   motivates: the client stores only the recommended views, never
   connects to the database, and keeps the views fresh by incremental
   maintenance when updates arrive.

     dune exec examples/offline_client.exe *)

let () =
  (* the "server": a Barton-like database *)
  let server_store = Workload.Barton.store ~n_entities:300 ~seed:8 () in
  Printf.printf "server database: %d triples\n" (Rdf.Store.size server_store);

  (* the application workload: queries with answers on this database *)
  let workload =
    Workload.Generator.generate_satisfiable server_store
      {
        Workload.Generator.shape = Workload.Generator.Star;
        n_queries = 3;
        atoms_per_query = 3;
        commonality = Workload.Generator.High;
        seed = 4;
      }
  in
  List.iter (fun q -> Printf.printf "  %s\n" (Query.Cq.to_string q)) workload;

  (* select and materialize views on the server *)
  let result =
    Core.Selector.select ~store:server_store
      ~reasoning:Core.Selector.No_reasoning
      ~options:
        { Core.Search.default_options with time_budget = Some 2.0 }
      workload
  in
  let views = result.Core.Selector.recommended in
  let env = Engine.Materialize.materialize_views server_store views in
  Printf.printf "\nshipping %d views (%d tuples, %d bytes) to the client\n"
    (List.length views)
    (Engine.Materialize.total_cardinality env)
    (Engine.Materialize.total_size_bytes server_store env);

  (* the client answers queries offline: only [env] and the rewritings
     are needed; we prove it by answering before and after wiping the
     server *)
  let answer qname =
    Engine.Executor.execute_query server_store env
      (List.assoc qname result.Core.Selector.rewritings)
  in
  let before =
    List.map (fun (q : Query.Cq.t) -> (q.Query.Cq.name, answer q.Query.Cq.name)) workload
  in
  List.iter
    (fun (qname, answers) ->
      Printf.printf "  %s: %d answers (offline)\n" qname (List.length answers))
    before;

  (* updates arrive: the client maintains its views incrementally; the
     inserted facts instantiate the view patterns with fresh entities, so
     the maintenance has real work to do *)
  print_endline "\napplying updates with incremental view maintenance...";
  let cq_views =
    List.map
      (fun (u : Query.Ucq.t) ->
        (List.hd (Query.Ucq.disjuncts u), Hashtbl.find env (Query.Ucq.name u)))
      views
  in
  let instantiations =
    List.concat
      (List.mapi
         (fun i (cq, _) ->
           let entity suffix = Rdf.Term.Uri (Printf.sprintf "ex:new%d%s" i suffix) in
           List.mapi
             (fun j (a : Query.Atom.t) ->
               let term_of suffix = function
                 | Query.Qterm.Cst t -> t
                 | Query.Qterm.Var _ -> entity suffix
               in
               Rdf.Triple.make
                 (term_of "" a.Query.Atom.s)
                 (term_of "_p" a.Query.Atom.p)
                 (term_of (Printf.sprintf "_o%d" j) a.Query.Atom.o))
             cq.Query.Cq.body)
         cq_views)
  in
  let added =
    List.fold_left
      (fun acc tr -> acc + Engine.Maintenance.insert_triple server_store cq_views tr)
      0 instantiations
  in
  let removed =
    match instantiations with
    | first :: _ -> Engine.Maintenance.delete_triple server_store cq_views first
    | [] -> 0
  in
  Printf.printf "  view tuples added: %d, removed: %d\n" added removed;

  (* consistency check: the maintained views equal recomputation *)
  let consistent =
    List.for_all
      (fun (cq, rel) ->
        let fresh = Engine.Materialize.materialize_cq server_store cq in
        let sort (r : Engine.Relation.t) = List.sort compare (List.map Array.to_list (Engine.Relation.rows r)) in
        sort fresh = sort rel)
      cq_views
  in
  Printf.printf "  maintained views consistent with recomputation: %b\n" consistent
